//! The paper's named experiments, parameterized exactly once.
//!
//! Benches, examples, tests, and EXPERIMENTS.md all refer to these
//! definitions, so "Figure 7" means the same parameters everywhere.
//! The scheduler-backed scenarios also know how to lower themselves to
//! a pre-wired [`crate::sim::Sim`] builder ([`Scenario::sim`]), so the
//! bench binaries, the CLI, and the tests all construct the same
//! experiment.

use crate::sim::{closed, poisson, JobShape, Sim, SimBuilder, SyntheticTrace};
use nds_cluster::owner::OwnerWorkload;
use nds_sched::{EvictionPolicy, FailureModel, GangPolicy, JobSpec};

/// Default owner demand used throughout the paper's analysis section.
pub const OWNER_DEMAND: f64 = 10.0;
/// The utilizations swept in Figures 1–7 and 9.
pub const UTILIZATIONS: [f64; 4] = [0.01, 0.05, 0.10, 0.20];
/// The paper's feasibility bar: 80% of the possible speedup.
pub const TARGET_WEIGHTED_EFFICIENCY: f64 = 0.80;

/// A named experiment from the paper.
#[derive(Debug, Clone, PartialEq)]
pub enum Scenario {
    /// Figures 1–4: fixed-size job, `J = 1000`, `W` swept 1..=100.
    FixedSize1K,
    /// Figures 5–6: fixed-size job, `J = 10_000`.
    FixedSize10K,
    /// Figure 7: task-ratio sweep at `W = 60`.
    TaskRatioAt60,
    /// Figure 8: task-ratio sweep at `U = 10%` over several pool sizes.
    TaskRatioBySize,
    /// Figure 9: memory-bounded scaleup, `T₀ = 100`.
    Scaled,
    /// Figures 10–11: PVM validation at 3% utilization, 1–12 stations.
    PvmValidation,
    /// Extension (§5 future work): a Condor-style cycle-stealing pool
    /// scheduler — eviction policies swept against owner utilizations
    /// on a 16-station pool (see the `nds-sched` crate and the
    /// `ext_sched_policies` binary).
    SchedulerPool,
    /// Extension (§5 future work): an **open** system — a Poisson
    /// stream of parallel jobs on the 16-station pool, reported as a
    /// steady-state mean response time with the paper's batch-means
    /// confidence interval (see the `ext_open_stream` binary and
    /// `examples/open_stream.rs`).
    OpenStream,
    /// Extension: **gang scheduling / co-allocation** — the paper's
    /// barrier-synchronized jobs taken seriously: a job is admitted
    /// only when every task fits at once, runs in lockstep, and
    /// suspends as a whole on any owner return (see the `nds-sched`
    /// `gang` module, the `ext_gang` binary, and `examples/gang.rs`).
    /// The same scenario parameterizes the **partial-gang** sweep
    /// (`ext_partial_gang`): Ousterhout-style co-scheduling floors
    /// between independent tasks and all-or-nothing gangs, swept via
    /// [`Scenario::partial_fracs`].
    GangPool,
    /// Extension: **machine failure injection** — the scheduler pool
    /// under per-machine crash/repair processes, swept across MTBF and
    /// eviction policy to chart the goodput-vs-availability frontier
    /// (see the `nds-sched` `failure` module, the `ext_faults` binary,
    /// and `examples/faults.rs`). A crash destroys the running guest's
    /// unprotected progress whatever the policy; only checkpointed
    /// work survives, so the frontier separates policies that merely
    /// tolerate benign reclaims from ones that tolerate machine loss.
    FaultyPool,
    /// Extension: a **trace-driven datacenter** — one synthetic day of
    /// a 64-station cluster (diurnal sinusoid arrivals, bounded-Pareto
    /// job sizes, hot/cool owner populations) streamed through the
    /// engine in bounded chunks rather than materialized (see
    /// [`crate::sim::SyntheticTrace`], the `ext_trace` binary,
    /// `nds replay`, and `examples/trace_replay.rs`).
    DatacenterTrace,
}

impl Scenario {
    /// Workstation counts swept by this scenario.
    pub fn workstations(&self) -> Vec<u32> {
        match self {
            Scenario::FixedSize1K | Scenario::FixedSize10K | Scenario::Scaled => {
                let mut v = vec![1u32];
                v.extend((5..=100).step_by(5));
                v
            }
            Scenario::TaskRatioAt60 => vec![60],
            Scenario::TaskRatioBySize => vec![2, 4, 8, 20, 60, 100],
            Scenario::PvmValidation => (1..=12).collect(),
            Scenario::SchedulerPool
            | Scenario::OpenStream
            | Scenario::GangPool
            | Scenario::FaultyPool => vec![16],
            Scenario::DatacenterTrace => vec![64],
        }
    }

    /// Owner utilizations swept by this scenario.
    pub fn utilizations(&self) -> Vec<f64> {
        match self {
            Scenario::TaskRatioBySize => vec![0.10],
            Scenario::PvmValidation => vec![0.03],
            Scenario::SchedulerPool | Scenario::OpenStream | Scenario::GangPool => {
                vec![0.05, 0.10, 0.20]
            }
            // One owner temperature: the faulty-pool sweep spends its
            // axes on MTBF x eviction policy instead.
            Scenario::FaultyPool => vec![0.10],
            // The cool and hot owner populations of the synthetic day.
            Scenario::DatacenterTrace => vec![0.05, 0.30],
            _ => UTILIZATIONS.to_vec(),
        }
    }

    /// Total job demand, if the scenario fixes one.
    pub fn job_demand(&self) -> Option<f64> {
        match self {
            Scenario::FixedSize1K => Some(1_000.0),
            Scenario::FixedSize10K => Some(10_000.0),
            _ => None,
        }
    }

    /// Task ratios swept (Figures 7–8).
    pub fn task_ratios(&self) -> Vec<f64> {
        match self {
            Scenario::TaskRatioAt60 | Scenario::TaskRatioBySize => {
                (1..=60).map(f64::from).collect()
            }
            _ => vec![],
        }
    }

    /// Per-node demand for scaled problems (Figure 9).
    pub fn per_node_demand(&self) -> Option<f64> {
        match self {
            Scenario::Scaled => Some(100.0),
            _ => None,
        }
    }

    /// Problem demands in dedicated minutes (Figures 10–11).
    pub fn demand_minutes(&self) -> Vec<u32> {
        match self {
            Scenario::PvmValidation => vec![1, 2, 4, 8, 16],
            _ => vec![],
        }
    }

    /// Human-readable figure label.
    pub fn figure_label(&self) -> &'static str {
        match self {
            Scenario::FixedSize1K => "Figures 1-4 (J = 1000)",
            Scenario::FixedSize10K => "Figures 5-6 (J = 10,000)",
            Scenario::TaskRatioAt60 => "Figure 7 (W = 60)",
            Scenario::TaskRatioBySize => "Figure 8 (U = 10%)",
            Scenario::Scaled => "Figure 9 (T0 = 100)",
            Scenario::PvmValidation => "Figures 10-11 (PVM, U = 3%)",
            Scenario::SchedulerPool => "Extension (scheduler pool, W = 16)",
            Scenario::OpenStream => "Extension (open Poisson stream, W = 16)",
            Scenario::GangPool => "Extension (gang co-allocation, W = 16)",
            Scenario::FaultyPool => "Extension (machine failure injection, W = 16)",
            Scenario::DatacenterTrace => "Extension (trace-driven datacenter, W = 64)",
        }
    }

    /// Per-task demand for the scheduler workload, if the scenario
    /// defines one.
    pub fn sched_task_demand(&self) -> Option<f64> {
        match self {
            Scenario::SchedulerPool | Scenario::FaultyPool => Some(120.0),
            _ => None,
        }
    }

    /// Multi-job workload shape `(jobs, tasks_per_job, inter_arrival)`
    /// for scheduler scenarios.
    pub fn sched_job_mix(&self) -> Option<(u32, u32, f64)> {
        match self {
            Scenario::SchedulerPool | Scenario::FaultyPool => Some((4, 16, 50.0)),
            _ => None,
        }
    }

    /// Poisson arrival rate λ (jobs per time unit) for open scenarios.
    pub fn open_arrival_rate(&self) -> Option<f64> {
        match self {
            Scenario::OpenStream => Some(0.02),
            _ => None,
        }
    }

    /// Per-job shape `(tasks, task_demand)` of the open stream.
    pub fn open_job_shape(&self) -> Option<(u32, f64)> {
        match self {
            Scenario::OpenStream => Some((4, 60.0)),
            _ => None,
        }
    }

    /// Observation window `(jobs, warmup_jobs)` of the open stream.
    pub fn open_window(&self) -> Option<(usize, usize)> {
        match self {
            Scenario::OpenStream => Some((400, 50)),
            _ => None,
        }
    }

    /// Gang co-allocation policy for gang scenarios.
    pub fn gang_policy(&self) -> Option<GangPolicy> {
        match self {
            Scenario::GangPool => Some(GangPolicy::SuspendAll),
            _ => None,
        }
    }

    /// Gang workload shape `(jobs, gang_size, task_demand,
    /// inter_arrival)` for gang scenarios. The gang size is the default
    /// of the `ext_gang` sweep, which varies it across
    /// [`Scenario::gang_sizes`].
    pub fn gang_job_mix(&self) -> Option<(u32, u32, f64, f64)> {
        match self {
            Scenario::GangPool => Some((6, 8, 90.0, 40.0)),
            _ => None,
        }
    }

    /// Gang sizes swept by the `ext_gang` experiment.
    pub fn gang_sizes(&self) -> Vec<u32> {
        match self {
            Scenario::GangPool => vec![1, 2, 4, 8, 16],
            _ => vec![],
        }
    }

    /// `min_running / width` floors swept by the `ext_partial_gang`
    /// experiment, from nearly-independent (one member suffices) to
    /// the all-or-nothing boundary (`1.0` is exactly
    /// [`GangPolicy::SuspendAll`] — the workspace property tests pin
    /// the equivalence bit-for-bit). Each frac lowers to
    /// [`GangPolicy::PartialFrac`], whose per-job floor is
    /// `ceil(frac * tasks)`.
    pub fn partial_fracs(&self) -> Vec<f64> {
        match self {
            Scenario::GangPool => vec![0.125, 0.25, 0.5, 0.75, 1.0],
            _ => vec![],
        }
    }

    /// The failure model of the fault-injection scenario: the middle
    /// point of the [`Scenario::failure_mtbfs`] sweep with the shared
    /// repair time.
    pub fn failure_model(&self) -> Option<FailureModel> {
        match self {
            Scenario::FaultyPool => {
                let mtbfs = self.failure_mtbfs();
                let mid = mtbfs[mtbfs.len() / 2];
                Some(
                    FailureModel::exponential(mid, self.failure_mttr()?)
                        .expect("scenario lifetimes are positive"),
                )
            }
            _ => None,
        }
    }

    /// MTBF values swept by the `ext_faults` experiment, from
    /// crash-dominated (a machine dies about once per job segment) to
    /// nearly reliable.
    pub fn failure_mtbfs(&self) -> Vec<f64> {
        match self {
            Scenario::FaultyPool => vec![60.0, 120.0, 300.0, 1_200.0, 6_000.0],
            _ => vec![],
        }
    }

    /// Mean repair time of the fault-injection scenario.
    pub fn failure_mttr(&self) -> Option<f64> {
        match self {
            Scenario::FaultyPool => Some(15.0),
            _ => None,
        }
    }

    /// Eviction policies compared on the goodput-vs-availability
    /// frontier of the `ext_faults` experiment.
    pub fn failure_eviction_policies(&self) -> Vec<EvictionPolicy> {
        match self {
            Scenario::FaultyPool => vec![
                EvictionPolicy::SuspendResume,
                EvictionPolicy::Restart,
                EvictionPolicy::Checkpoint {
                    interval: 30.0,
                    overhead: 1.0,
                },
                // Threshold at half the scenario's task demand: young
                // tasks restart for free, invested tasks checkpoint.
                EvictionPolicy::Adaptive {
                    threshold: 60.0,
                    interval: 30.0,
                    overhead: 1.0,
                },
            ],
            _ => vec![],
        }
    }

    /// The synthetic-day generator of the trace scenario: the stable
    /// trace window `(machines, jobs)` is sized so the offered load
    /// sits at roughly two-thirds of the pool's spare capacity.
    pub fn trace_generator(&self) -> Option<SyntheticTrace> {
        match self {
            Scenario::DatacenterTrace => Some(SyntheticTrace::datacenter(64, 1_200)),
            _ => None,
        }
    }

    /// Streaming chunk size used when replaying the trace scenario.
    pub fn trace_stream_chunk(&self) -> Option<usize> {
        match self {
            Scenario::DatacenterTrace => Some(256),
            _ => None,
        }
    }

    /// Lower a scheduler-backed scenario (`SchedulerPool`,
    /// `OpenStream`) to a pre-wired [`Sim`] builder over the given
    /// owner behaviour; `None` for the analytic figures. Callers
    /// customize policies/seeds on the returned builder.
    /// `DatacenterTrace` ignores `owner` — its hot/cool population
    /// comes from the generator ([`SyntheticTrace::owners`], drawn at
    /// the builder's default seed; re-derive after changing `.seed()`).
    pub fn sim(&self, owner: &OwnerWorkload) -> Option<SimBuilder> {
        let w = *self.workstations().first()?;
        match self {
            Scenario::SchedulerPool => {
                let task_demand = self.sched_task_demand()?;
                let (jobs, tasks, gap) = self.sched_job_mix()?;
                Some(
                    Sim::pool(w)
                        .owners(owner)
                        .workload(closed(JobSpec::stream(jobs, tasks, task_demand, gap)))
                        .calibration(10_000.0),
                )
            }
            Scenario::FaultyPool => {
                let task_demand = self.sched_task_demand()?;
                let (jobs, tasks, gap) = self.sched_job_mix()?;
                Some(
                    Sim::pool(w)
                        .owners(owner)
                        .failures(self.failure_model()?)
                        .workload(closed(JobSpec::stream(jobs, tasks, task_demand, gap)))
                        .calibration(10_000.0),
                )
            }
            Scenario::OpenStream => {
                let rate = self.open_arrival_rate()?;
                let (tasks, task_demand) = self.open_job_shape()?;
                let (jobs, warmup) = self.open_window()?;
                Some(
                    Sim::pool(w)
                        .owners(owner)
                        .workload(
                            poisson(rate, JobShape::new(tasks, task_demand))
                                .jobs(jobs)
                                .warmup(warmup),
                        )
                        .calibration(10_000.0),
                )
            }
            Scenario::GangPool => {
                let gang = self.gang_policy()?;
                let (jobs, tasks, task_demand, gap) = self.gang_job_mix()?;
                Some(
                    Sim::pool(w)
                        .owners(owner)
                        .gang(gang)
                        .workload(closed(JobSpec::stream(jobs, tasks, task_demand, gap)))
                        .calibration(10_000.0),
                )
            }
            Scenario::DatacenterTrace => {
                let gen = self.trace_generator()?;
                let owners = gen.owners(0x5EED, 0).ok()?;
                Some(
                    Sim::pool(gen.machines())
                        .owners(owners)
                        .workload(gen)
                        .stream_chunk(self.trace_stream_chunk()?),
                )
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_size_sweeps_reach_100() {
        let w = Scenario::FixedSize1K.workstations();
        assert_eq!(*w.first().unwrap(), 1);
        assert_eq!(*w.last().unwrap(), 100);
        assert_eq!(Scenario::FixedSize1K.job_demand(), Some(1000.0));
        assert_eq!(Scenario::FixedSize10K.job_demand(), Some(10_000.0));
    }

    #[test]
    fn task_ratio_scenarios() {
        assert_eq!(Scenario::TaskRatioAt60.workstations(), vec![60]);
        assert_eq!(Scenario::TaskRatioAt60.task_ratios().len(), 60);
        assert_eq!(
            Scenario::TaskRatioBySize.workstations(),
            vec![2, 4, 8, 20, 60, 100]
        );
        assert_eq!(Scenario::TaskRatioBySize.utilizations(), vec![0.10]);
    }

    #[test]
    fn pvm_scenario_matches_paper() {
        let s = Scenario::PvmValidation;
        assert_eq!(s.workstations(), (1..=12).collect::<Vec<_>>());
        assert_eq!(s.demand_minutes(), vec![1, 2, 4, 8, 16]);
        assert_eq!(s.utilizations(), vec![0.03]);
    }

    #[test]
    fn scaled_scenario() {
        assert_eq!(Scenario::Scaled.per_node_demand(), Some(100.0));
        assert!(Scenario::Scaled.job_demand().is_none());
    }

    #[test]
    fn scheduler_scenario_parameters() {
        let s = Scenario::SchedulerPool;
        assert_eq!(s.workstations(), vec![16]);
        assert_eq!(s.utilizations(), vec![0.05, 0.10, 0.20]);
        assert_eq!(s.sched_task_demand(), Some(120.0));
        assert_eq!(s.sched_job_mix(), Some((4, 16, 50.0)));
        assert!(s.job_demand().is_none());
        assert!(Scenario::FixedSize1K.sched_task_demand().is_none());
        assert!(Scenario::FixedSize1K.sched_job_mix().is_none());
    }

    #[test]
    fn labels_unique() {
        let all = [
            Scenario::FixedSize1K,
            Scenario::FixedSize10K,
            Scenario::TaskRatioAt60,
            Scenario::TaskRatioBySize,
            Scenario::Scaled,
            Scenario::PvmValidation,
            Scenario::SchedulerPool,
            Scenario::OpenStream,
            Scenario::GangPool,
            Scenario::FaultyPool,
            Scenario::DatacenterTrace,
        ];
        let labels: std::collections::BTreeSet<_> = all.iter().map(|s| s.figure_label()).collect();
        assert_eq!(labels.len(), all.len());
    }

    #[test]
    fn open_stream_scenario_parameters() {
        let s = Scenario::OpenStream;
        assert_eq!(s.workstations(), vec![16]);
        assert_eq!(s.utilizations(), vec![0.05, 0.10, 0.20]);
        assert_eq!(s.open_arrival_rate(), Some(0.02));
        assert_eq!(s.open_job_shape(), Some((4, 60.0)));
        assert_eq!(s.open_window(), Some((400, 50)));
        // Stability: offered load must sit well below the pool's spare
        // capacity at every swept utilization.
        let (tasks, demand) = s.open_job_shape().unwrap();
        let offered = s.open_arrival_rate().unwrap() * f64::from(tasks) * demand;
        for u in s.utilizations() {
            let capacity = f64::from(s.workstations()[0]) * (1.0 - u);
            assert!(offered < 0.5 * capacity, "U={u}: {offered} vs {capacity}");
        }
        assert!(Scenario::FixedSize1K.open_arrival_rate().is_none());
    }

    #[test]
    fn scheduler_scenarios_lower_to_sim() {
        let owner = OwnerWorkload::continuous_exponential(10.0, 0.10).unwrap();
        for s in [
            Scenario::SchedulerPool,
            Scenario::OpenStream,
            Scenario::GangPool,
            Scenario::FaultyPool,
        ] {
            let sim = s.sim(&owner).expect("scheduler scenario").build().unwrap();
            assert!(sim.label().contains("W=16"));
        }
        assert!(Scenario::FixedSize1K.sim(&owner).is_none());
        assert!(Scenario::PvmValidation.sim(&owner).is_none());
    }

    #[test]
    fn datacenter_trace_scenario_parameters() {
        let s = Scenario::DatacenterTrace;
        assert_eq!(s.workstations(), vec![64]);
        let gen = s.trace_generator().expect("trace scenario has a generator");
        assert_eq!(gen.machines(), 64);
        assert!(s.trace_stream_chunk().unwrap() >= 1);
        // Stability: the synthetic day's offered load must sit below
        // the pool's spare capacity (E[tasks] * E[demand] * lambda_0).
        let jobs = 1_200.0;
        let mean_work = 32.5 * 87.0; // uniform widths 1..=64, Pareto(1.5, [30, 30k))
        let offered = jobs / 86_400.0 * mean_work;
        let capacity = 64.0 * (1.0 - (0.3 * 0.30 + 0.7 * 0.05));
        assert!(offered < 0.75 * capacity, "{offered} vs {capacity}");
        // The lowering pre-wires streaming with the generator's owners.
        let owner = OwnerWorkload::continuous_exponential(10.0, 0.10).unwrap();
        let sim = s.sim(&owner).unwrap().build().unwrap();
        assert!(
            sim.label().contains("synthetic-trace(64 machines"),
            "{}",
            sim.label()
        );
        assert!(Scenario::OpenStream.trace_generator().is_none());
        assert!(Scenario::FixedSize1K.trace_stream_chunk().is_none());
    }

    #[test]
    fn faulty_pool_scenario_parameters() {
        let s = Scenario::FaultyPool;
        assert_eq!(s.workstations(), vec![16]);
        assert_eq!(s.utilizations(), vec![0.10]);
        // The MTBF sweep brackets crash-dominated to nearly reliable
        // and sweeps upward.
        let mtbfs = s.failure_mtbfs();
        assert!(mtbfs.len() >= 3);
        assert!(mtbfs.windows(2).all(|w| w[0] < w[1]));
        let mttr = s.failure_mttr().unwrap();
        assert!(mttr > 0.0);
        // Worst availability stays meaningful (pool not mostly dead),
        // best is near one.
        let worst = mtbfs[0] / (mtbfs[0] + mttr);
        let best = mtbfs[mtbfs.len() - 1] / (mtbfs[mtbfs.len() - 1] + mttr);
        assert!(worst > 0.5, "worst availability {worst}");
        assert!(best > 0.99, "best availability {best}");
        // The default model sits inside the sweep.
        let model = s.failure_model().unwrap();
        assert!((model.mtbf.mean() - mtbfs[mtbfs.len() / 2]).abs() < 1e-9);
        // Policy panel: includes the crash-survivors (checkpoint,
        // adaptive) and the crash-naive baselines.
        let policies = s.failure_eviction_policies();
        assert!(policies.contains(&EvictionPolicy::SuspendResume));
        assert!(policies.contains(&EvictionPolicy::Restart));
        assert!(policies
            .iter()
            .any(|p| matches!(p, EvictionPolicy::Checkpoint { .. })));
        assert!(policies
            .iter()
            .any(|p| matches!(p, EvictionPolicy::Adaptive { .. })));
        // The lowering carries the model into the label.
        let owner = OwnerWorkload::continuous_exponential(10.0, 0.10).unwrap();
        let sim = s.sim(&owner).unwrap().build().unwrap();
        assert!(sim.label().contains("mtbf"), "{}", sim.label());
        assert!(Scenario::SchedulerPool.failure_model().is_none());
        assert!(Scenario::OpenStream.failure_mtbfs().is_empty());
        assert!(Scenario::GangPool.failure_eviction_policies().is_empty());
    }

    #[test]
    fn gang_scenario_parameters() {
        let s = Scenario::GangPool;
        assert_eq!(s.workstations(), vec![16]);
        assert_eq!(s.utilizations(), vec![0.05, 0.10, 0.20]);
        assert_eq!(s.gang_policy(), Some(GangPolicy::SuspendAll));
        let (jobs, tasks, demand, gap) = s.gang_job_mix().unwrap();
        assert!(jobs > 1, "co-allocation needs queue contention");
        assert!(tasks <= s.workstations()[0], "gangs must fit the pool");
        assert!(demand > 0.0 && gap > 0.0);
        assert!(s.gang_sizes().iter().all(|&g| g <= s.workstations()[0]));
        assert!(
            s.gang_sizes().contains(&1),
            "sweep includes the degenerate size"
        );
        // Partial floors: valid fractions, reaching the suspend-all
        // boundary so the sweep brackets the whole spectrum.
        let fracs = s.partial_fracs();
        assert!(!fracs.is_empty());
        assert!(fracs.iter().all(|&f| f > 0.0 && f <= 1.0));
        assert_eq!(*fracs.last().unwrap(), 1.0, "sweep ends at suspend-all");
        assert!(fracs.windows(2).all(|w| w[0] < w[1]), "floors sweep upward");
        assert!(Scenario::OpenStream.partial_fracs().is_empty());
        // The gang lowering carries the policy into the label.
        let owner = OwnerWorkload::continuous_exponential(10.0, 0.10).unwrap();
        let sim = s.sim(&owner).unwrap().build().unwrap();
        assert!(sim.label().contains("gang suspend-all"), "{}", sim.label());
        assert!(Scenario::SchedulerPool.gang_policy().is_none());
        assert!(Scenario::OpenStream.gang_job_mix().is_none());
        assert!(Scenario::FixedSize1K.gang_sizes().is_empty());
    }
}
