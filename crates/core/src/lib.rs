//! # nds-core — the feasibility toolkit
//!
//! The paper's question is practical: *given a pool of non-dedicated
//! workstations, is cycle-stealing parallel computing worth it?* This
//! crate is the user-facing answer machine, tying together the
//! analytical model (`nds-model`), the simulators (`nds-cluster`), and
//! the PVM validation stack (`nds-pvm`):
//!
//! * [`analyzer::FeasibilityAnalyzer`] — one-stop API: metrics, verdict,
//!   required task ratio, maximum useful pool size, job-time quantiles.
//! * [`comparison`] — analysis-vs-simulation agreement checks (the
//!   paper's §2.2 validation) and measured-vs-analytic tables (§4).
//! * [`scenario`] — the named experiments of the paper (Figures 1–11)
//!   with their exact parameters, so benches, examples, and tests all
//!   agree on what "Figure 7" means.
//! * [`conclusions`] — the paper's quantitative §5 claims, encoded and
//!   checkable against the model.
//! * [`report`] — plain-text table rendering for figure regeneration.
//! * [`sim`] — the unified experiment builder: trait-based workloads
//!   (closed job sets and open Poisson streams) behind one fluent
//!   [`sim::Sim`] API, lowered to the cluster or scheduler engines.
//! * [`sweep`] — parallel parameter-sweep helpers (scoped threads).
//!
//! ## Quickstart
//!
//! ```
//! use nds_core::analyzer::FeasibilityAnalyzer;
//!
//! // 60 workstations at 10% owner utilization, owner bursts of 10 s;
//! // a job that needs 2 dedicated hours (7200 s).
//! let analyzer = FeasibilityAnalyzer::builder()
//!     .workstations(60)
//!     .owner_demand(10.0)
//!     .owner_utilization(0.10)
//!     .job_demand(7200.0)
//!     .build()
//!     .unwrap();
//! let verdict = analyzer.assess().unwrap();
//! assert!(verdict.feasible, "task ratio {} is ample", verdict.metrics.task_ratio);
//! ```

#![forbid(unsafe_code)]

pub mod analyzer;
pub mod comparison;
pub mod conclusions;
pub mod error;
pub mod prelude;
pub mod report;
pub mod scenario;
pub mod sim;
pub mod sweep;

pub use analyzer::{Assessment, FeasibilityAnalyzer};
pub use comparison::{ComparisonRow, ValidationSuite};
pub use conclusions::{check_all_conclusions, ConclusionCheck};
pub use error::CoreError;
pub use report::Table;
pub use scenario::Scenario;
pub use sim::{Sim, SimError};
