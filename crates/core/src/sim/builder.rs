//! The fluent [`Sim`] builder: one entry point for every experiment.
//!
//! ```
//! use nds_core::sim::{poisson, JobShape, Sim};
//! use nds_cluster::owner::OwnerWorkload;
//! use nds_sched::{EvictionPolicy, PlacementKind};
//!
//! let owner = OwnerWorkload::continuous_exponential(10.0, 0.10).unwrap();
//! let report = Sim::pool(16)
//!     .owners(owner)
//!     .placement(PlacementKind::LeastLoaded)
//!     .eviction(EvictionPolicy::Checkpoint { interval: 30.0, overhead: 1.0 })
//!     .workload(poisson(0.01, JobShape::new(4, 60.0)).jobs(80).warmup(16))
//!     .run()
//!     .unwrap();
//! assert!(report.is_consistent());
//! let ss = report.steady_state.expect("open workloads report steady state");
//! assert!(ss.response.mean > 60.0, "response exceeds dedicated task time");
//! ```
//!
//! # Lowering
//!
//! `run()` lowers the description to one of two engines:
//!
//! * the **cluster runner** ([`nds_cluster::job::JobRunner`]) when the
//!   configuration is *degenerate* — a homogeneous pool, one closed job
//!   with one task per station, suspend-resume eviction, nothing fenced
//!   by admission control. This is the paper's exact model, and by the
//!   workspace's degenerate-equivalence invariant it reproduces the
//!   scheduler engine's job times bit-for-bit at a fraction of the
//!   cost;
//! * the **scheduler engine** ([`nds_sched`]) for everything else:
//!   multi-job and open workloads, non-trivial eviction/placement,
//!   admission thresholds.
//!
//! [`Backend::Sched`] forces the scheduler engine (the equivalence
//! tests do exactly that); [`Backend::Cluster`] demands the fast path
//! and returns [`SimError::UnsupportedBackend`] if the configuration
//! cannot take it.

use crate::sim::error::SimError;
use crate::sim::report::{Report, ResponseStats, SteadyState};
use crate::sim::workload::Workload;
use crate::sweep::parallel_map;
use nds_cluster::job::JobRunner;
use nds_cluster::owner::OwnerWorkload;
use nds_sched::{
    EvictionPolicy, FailureModel, FlightRecorder, GangPolicy, GangStats, JobRecord, JobSpec,
    PlacementKind, ProgressMeter, QueueDiscipline, RecordFilter, SchedConfig, SchedMetrics, Tee,
};
use nds_stats::batch_means::{PAPER_BATCHES, PAPER_CONFIDENCE};

/// Which engine executes the experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Pick automatically: the cluster runner for degenerate closed
    /// configurations, the scheduler engine otherwise.
    #[default]
    Auto,
    /// Force the closed-form cluster runner (errors if the
    /// configuration is not degenerate).
    Cluster,
    /// Force the scheduler engine.
    Sched,
}

impl Backend {
    /// Stable name for error messages and tables.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Auto => "auto",
            Self::Cluster => "cluster",
            Self::Sched => "sched",
        }
    }
}

/// Owner populations accepted by [`SimBuilder::owners`]: one workload
/// shared by the whole pool, or one per machine.
#[derive(Debug, Clone)]
pub enum OwnerSpec {
    /// Every machine shares this owner behaviour.
    Homogeneous(OwnerWorkload),
    /// One owner workload per machine (length must equal the pool
    /// size).
    PerMachine(Vec<OwnerWorkload>),
}

impl From<OwnerWorkload> for OwnerSpec {
    fn from(owner: OwnerWorkload) -> Self {
        Self::Homogeneous(owner)
    }
}

impl From<&OwnerWorkload> for OwnerSpec {
    fn from(owner: &OwnerWorkload) -> Self {
        Self::Homogeneous(owner.clone())
    }
}

impl From<Vec<OwnerWorkload>> for OwnerSpec {
    fn from(owners: Vec<OwnerWorkload>) -> Self {
        Self::PerMachine(owners)
    }
}

impl From<&[OwnerWorkload]> for OwnerSpec {
    fn from(owners: &[OwnerWorkload]) -> Self {
        Self::PerMachine(owners.to_vec())
    }
}

/// A validated, runnable experiment. Build one with [`Sim::pool`].
#[derive(Debug)]
pub struct Sim {
    workstations: u32,
    owners: Vec<OwnerWorkload>,
    homogeneous: bool,
    placement: PlacementKind,
    eviction: EvictionPolicy,
    gang: GangPolicy,
    failures: Option<FailureModel>,
    discipline: QueueDiscipline,
    admission_threshold: f64,
    estimator_tau: f64,
    calibration_horizon: f64,
    seed: u64,
    replications: u64,
    max_events: u64,
    backend: Backend,
    confidence: f64,
    batches: usize,
    shards: usize,
    metrics_every: f64,
    progress_every: Option<f64>,
    trace_cheap: bool,
    trace_capacity: usize,
    trace_filter: Option<RecordFilter>,
    stream_chunk: usize,
    workload: Box<dyn Workload>,
}

/// One traced replication: the run's metrics plus its flight-recorder
/// exports. Produced by [`Sim::run_flight`].
#[derive(Debug)]
pub struct Flight {
    /// Which replication this trace observed.
    pub replication: u64,
    /// The run's aggregate metrics (identical to the untraced run's).
    pub metrics: SchedMetrics,
    /// Calendar events the engine executed.
    pub events: u64,
    /// The finished recorder: event log, metrics registry, profiler.
    pub recorder: FlightRecorder,
}

impl Flight {
    /// The structured event log as JSON Lines.
    pub fn to_jsonl(&self) -> String {
        self.recorder.to_jsonl()
    }

    /// The event log as Chrome trace-event JSON (Perfetto-loadable).
    pub fn to_chrome_json(&self) -> String {
        self.recorder.to_chrome_json()
    }

    /// The sim-time metrics series plus per-machine owner activity.
    pub fn metrics_json(&self) -> String {
        self.recorder.metrics_json()
    }

    /// The per-event-class host-time profile.
    pub fn profile_json(&self) -> String {
        self.recorder.profile_json()
    }
}

impl Sim {
    /// Start describing an experiment on a pool of `workstations`
    /// machines.
    pub fn pool(workstations: u32) -> SimBuilder {
        SimBuilder {
            workstations,
            owners: None,
            placement: PlacementKind::LeastLoaded,
            eviction: EvictionPolicy::SuspendResume,
            gang: GangPolicy::Off,
            failures: None,
            discipline: QueueDiscipline::Fcfs,
            admission_threshold: 1.0,
            estimator_tau: 1_000.0,
            calibration_horizon: 0.0,
            seed: 0x5EED,
            replications: 1,
            max_events: 20_000_000,
            backend: Backend::Auto,
            confidence: PAPER_CONFIDENCE,
            batches: PAPER_BATCHES,
            shards: 1,
            metrics_every: 100.0,
            progress_every: None,
            trace_cheap: false,
            trace_capacity: 0,
            trace_filter: None,
            stream_chunk: 0,
            workload: None,
        }
    }

    /// Human-readable experiment description.
    pub fn label(&self) -> String {
        let gang = if self.gang.is_on() {
            format!(", gang {}", self.gang.label())
        } else {
            String::new()
        };
        let faults = match &self.failures {
            Some(model) => format!(", {}", model.label()),
            None => String::new(),
        };
        format!(
            "W={} pool, {} placement, {} eviction{gang}{faults}, {} queue, {}",
            self.workstations,
            self.placement.name(),
            self.eviction.label(),
            self.discipline.name(),
            self.workload.label()
        )
    }

    /// The configured workload.
    pub fn workload(&self) -> &dyn Workload {
        self.workload.as_ref()
    }

    /// Lower this experiment to the scheduler engine's configuration
    /// for one replication — the escape hatch for callers that need the
    /// raw [`SchedConfig`] (the invariant tests compare it against the
    /// builder's own runs).
    pub fn lower(&self, replication: u64) -> Result<SchedConfig, SimError> {
        let jobs = self.workload.generate(self.seed, replication)?;
        Ok(self.lower_with_jobs(jobs, replication))
    }

    fn lower_with_jobs(&self, jobs: Vec<JobSpec>, replication: u64) -> SchedConfig {
        SchedConfig {
            owners: self.owners.clone(),
            jobs,
            placement: self.placement,
            eviction: self.eviction,
            gang: self.gang,
            failures: self.failures,
            discipline: self.discipline,
            admission_threshold: self.admission_threshold,
            estimator_tau: self.estimator_tau,
            calibration_horizon: self.calibration_horizon,
            seed: self.seed,
            replication,
            max_events: self.max_events,
        }
    }

    /// Whether `jobs` makes this the paper's degenerate configuration,
    /// eligible for the closed-form cluster runner: homogeneous owners,
    /// one job at time zero with exactly one task per station,
    /// suspend-resume eviction, and no admission fencing.
    fn is_degenerate(&self, jobs: &[JobSpec]) -> bool {
        self.homogeneous
            && !self.workload.is_open()
            && jobs.len() == 1
            && jobs[0].arrival == 0.0
            && jobs[0].tasks == self.workstations
            && self.eviction == EvictionPolicy::SuspendResume
            && !self.gang.is_on()
            && self.failures.is_none()
            && self.admission_threshold >= 1.0
    }

    /// Run one replication on the cluster runner and express the
    /// result in the unified metrics vocabulary. Valid only for
    /// degenerate configurations (suspend-resume never wastes work, so
    /// delivered CPU equals the job demand exactly).
    fn run_cluster(&self, jobs: &[JobSpec], replication: u64) -> SchedMetrics {
        let spec = jobs[0];
        let result = JobRunner::new(self.seed).run_continuous_job(
            &self.owners[0],
            spec.task_demand,
            spec.tasks,
            replication,
        );
        let makespan = result.job_time();
        let total_demand = spec.total_demand();
        let interruptions = result.total_interruptions();
        SchedMetrics {
            makespan,
            delivered: total_demand,
            goodput: total_demand,
            wasted: 0.0,
            checkpoint_overhead: 0.0,
            evictions: interruptions,
            suspensions: interruptions,
            restarts: 0,
            migrations: 0,
            completed_tasks: u64::from(spec.tasks),
            total_demand,
            placements: u64::from(spec.tasks),
            mean_queue_wait: 0.0,
            // The closed-form runner has no pool to gauge: every
            // station is pinned to its task for the whole run.
            mean_available_machines: 0.0,
            gang: GangStats::default(),
            jobs: vec![JobRecord {
                arrival: 0.0,
                completion: makespan,
                demand: total_demand,
            }],
            crashes: 0,
            crash_lost: 0.0,
            downtime: 0.0,
            crashes_by_machine: Vec::new(),
        }
    }

    /// Execute one replication on the backend the configuration
    /// resolves to. Returns the run's metrics plus, for streamed runs
    /// only, the post-warmup response times collected at the sink (the
    /// streamed engine does not materialize `metrics.jobs`).
    fn run_one(&self, replication: u64) -> Result<(SchedMetrics, Option<Vec<f64>>), SimError> {
        if self.stream_chunk > 0 {
            return self
                .run_one_streamed(replication)
                .map(|(metrics, responses)| (metrics, Some(responses)));
        }
        self.run_one_materialized(replication)
            .map(|metrics| (metrics, None))
    }

    /// One replication through the streaming job feed: the workload's
    /// [`Workload::feed`] is pulled in `stream_chunk`-sized batches and
    /// completed jobs are retired as soon as they finish, so peak
    /// memory is O(chunk + pool), independent of the job count.
    fn run_one_streamed(&self, replication: u64) -> Result<(SchedMetrics, Vec<f64>), SimError> {
        let cfg = self.lower_with_jobs(Vec::new(), replication);
        let mut feed = self.workload.feed(self.seed, replication)?;
        let warmup = self.workload.warmup_jobs();
        let mut responses = Vec::new();
        let mut sink = |job: usize, record: JobRecord| {
            if job >= warmup {
                responses.push(record.response_time());
            }
        };
        let (metrics, _events) = cfg.run_streamed(feed.as_mut(), self.stream_chunk, &mut sink)?;
        Ok((metrics, responses))
    }

    fn run_one_materialized(&self, replication: u64) -> Result<SchedMetrics, SimError> {
        let jobs = self.workload.generate(self.seed, replication)?;
        let degenerate = self.is_degenerate(&jobs);
        match self.backend {
            Backend::Cluster if !degenerate => Err(SimError::UnsupportedBackend {
                backend: "cluster",
                reason: "the closed-form runner serves only the degenerate \
                         configuration (homogeneous pool, one closed job with \
                         one task per station, suspend-resume eviction, no gang \
                         policy, no failure model, admission threshold >= 1)"
                    .into(),
            }),
            Backend::Cluster => Ok(self.run_cluster(&jobs, replication)),
            Backend::Auto if degenerate => Ok(self.run_cluster(&jobs, replication)),
            Backend::Auto | Backend::Sched => {
                let cfg = self.lower(replication)?;
                if let Some(every) = self.progress_every {
                    // The meter is ENABLED, so the engine takes the
                    // traced path — metrics stay bit-identical to the
                    // untraced run (pinned by the trace invariants).
                    let mut meter = self.meter(every, replication, &cfg.jobs);
                    Ok(cfg.run_traced(&mut meter)?.0)
                } else {
                    Ok(cfg.run()?)
                }
            }
        }
    }

    /// A progress heartbeat for one replication, with the workload's
    /// last scheduled arrival as the sim-time horizon (a lower bound
    /// on the makespan — 100% means all jobs are in, drain follows).
    fn meter(&self, every: f64, replication: u64, jobs: &[JobSpec]) -> ProgressMeter {
        let horizon = jobs.iter().map(|j| j.arrival).fold(0.0, f64::max);
        ProgressMeter::new(every)
            .with_label(format!("rep{replication}"))
            .with_horizon(horizon)
    }

    /// Execute every replication and assemble the unified report.
    ///
    /// With [`SimBuilder::shards`] above one, replications fan out
    /// across [`crate::sweep`]'s scoped threads — each replication is an
    /// independent experiment with its own seeded streams and the
    /// results are spliced back in replication order, so the report is
    /// byte-identical to the serial path (the engine itself stays
    /// single-threaded).
    pub fn run(&self) -> Result<Report, SimError> {
        let reps: Vec<u64> = (0..self.replications).collect();
        type RepResult = Result<(SchedMetrics, Option<Vec<f64>>), SimError>;
        let results: Vec<RepResult> = if self.shards > 1 {
            parallel_map(&reps, self.shards, |&replication| self.run_one(replication))
        } else {
            reps.iter().map(|&r| self.run_one(r)).collect()
        };
        let mut runs = Vec::with_capacity(self.replications as usize);
        let mut per_rep: Vec<Vec<f64>> = Vec::with_capacity(self.replications as usize);
        let warmup = self.workload.warmup_jobs();
        for result in results {
            let (metrics, streamed) = result?;
            per_rep.push(match streamed {
                // Streamed runs already dropped warmup at the sink.
                Some(responses) => responses,
                None => metrics
                    .jobs
                    .iter()
                    .skip(warmup)
                    .map(JobRecord::response_time)
                    .collect(),
            });
            runs.push(metrics);
        }
        // Batch means are formed within each replication (no batch ever
        // straddles a replication boundary); `warmup` is dropped from
        // every replication independently.
        let steady_state = if self.workload.is_open() {
            Some(SteadyState::from_replications(
                &per_rep,
                self.batches,
                self.confidence,
                warmup,
            )?)
        } else {
            None
        };
        let responses: Vec<f64> = per_rep.into_iter().flatten().collect();
        Ok(Report {
            label: self.label(),
            workstations: self.workstations,
            response: ResponseStats::from_responses(&responses),
            runs,
            steady_state,
        })
    }

    /// Run every replication under the flight recorder and return one
    /// [`Flight`] per replication, in replication order.
    ///
    /// Tracing always lowers to the scheduler engine — the closed-form
    /// cluster runner has no event loop to observe — so a degenerate
    /// configuration's traced metrics still match its untraced run
    /// bit-for-bit (by the workspace's degenerate-equivalence
    /// invariant). Like [`Sim::run`], replications shard across scoped
    /// threads when [`SimBuilder::shards`] exceeds one; the recorder
    /// only ever observes simulation state, so the traces are
    /// byte-identical to the serial path's.
    pub fn run_flight(&self) -> Result<Vec<Flight>, SimError> {
        let trace_one = |&replication: &u64| -> Result<Flight, SimError> {
            let cfg = self.lower(replication)?;
            let machines = self.workstations as usize;
            let mut recorder = if self.trace_cheap {
                FlightRecorder::cheap(machines, self.metrics_every)
            } else {
                FlightRecorder::new(machines, self.metrics_every)
            };
            if let Some(filter) = &self.trace_filter {
                recorder = recorder.with_filter(filter.clone());
            }
            if self.trace_capacity > 0 {
                recorder = recorder.with_capacity(self.trace_capacity);
            }
            let (metrics, events) = if let Some(every) = self.progress_every {
                let meter = self.meter(every, replication, &cfg.jobs);
                let mut tee = Tee(recorder, meter);
                let out = cfg.run_traced(&mut tee)?;
                recorder = tee.0;
                out
            } else {
                cfg.run_traced(&mut recorder)?
            };
            recorder.finish(metrics.makespan);
            Ok(Flight {
                replication,
                metrics,
                events,
                recorder,
            })
        };
        let reps: Vec<u64> = (0..self.replications).collect();
        let results: Vec<Result<Flight, SimError>> = if self.shards > 1 {
            parallel_map(&reps, self.shards, trace_one)
        } else {
            reps.iter().map(trace_one).collect()
        };
        results.into_iter().collect()
    }
}

/// Accumulates an experiment description; `build()` validates it into
/// a [`Sim`]. Every setter is infallible — all errors surface as typed
/// [`SimError`]s at build time, never as panics.
#[derive(Debug)]
pub struct SimBuilder {
    workstations: u32,
    owners: Option<OwnerSpec>,
    placement: PlacementKind,
    eviction: EvictionPolicy,
    gang: GangPolicy,
    failures: Option<FailureModel>,
    discipline: QueueDiscipline,
    admission_threshold: f64,
    estimator_tau: f64,
    calibration_horizon: f64,
    seed: u64,
    replications: u64,
    max_events: u64,
    backend: Backend,
    confidence: f64,
    batches: usize,
    shards: usize,
    metrics_every: f64,
    progress_every: Option<f64>,
    trace_cheap: bool,
    trace_capacity: usize,
    trace_filter: Option<RecordFilter>,
    stream_chunk: usize,
    workload: Option<Box<dyn Workload>>,
}

impl SimBuilder {
    /// Owner population: pass one [`OwnerWorkload`] for a homogeneous
    /// pool or a `Vec` with one workload per machine.
    #[must_use]
    pub fn owners(mut self, owners: impl Into<OwnerSpec>) -> Self {
        self.owners = Some(owners.into());
        self
    }

    /// Task placement policy (default: least-loaded).
    #[must_use]
    pub fn placement(mut self, placement: PlacementKind) -> Self {
        self.placement = placement;
        self
    }

    /// Owner-return policy (default: suspend-resume, the paper's
    /// model).
    #[must_use]
    pub fn eviction(mut self, eviction: EvictionPolicy) -> Self {
        self.eviction = eviction;
        self
    }

    /// Gang scheduling / co-allocation policy (default: off —
    /// independent tasks). When on, jobs are admitted as gangs, run in
    /// lockstep (the paper's barrier-synchronized picture), and the
    /// gang policy supersedes [`SimBuilder::eviction`] on owner
    /// returns. `SuspendAll`/`MigrateAll` are all-or-nothing;
    /// [`GangPolicy::Partial`] admits once its `min_running` floor
    /// fits and keeps computing at a degraded rate while at least the
    /// floor holds owner-free machines — `min_running: 1` behaves like
    /// independent tasks sharing one clock, `min_running: tasks` is
    /// exactly `SuspendAll` (bit-for-bit, per the workspace property
    /// tests). Composes with both closed and open workloads.
    #[must_use]
    pub fn gang(mut self, gang: GangPolicy) -> Self {
        self.gang = gang;
        self
    }

    /// Machine failure injection (default: none). With a
    /// [`FailureModel`], every machine alternates between up intervals
    /// drawn from the model's MTBF lifetime and down intervals drawn
    /// from its MTTR lifetime, on RNG streams independent of the owner
    /// and placement streams — a run without a model is bit-identical
    /// to an engine that has never heard of failures. A crash kills the
    /// running guest regardless of [`SimBuilder::eviction`] (only
    /// checkpointed progress survives, rolled back to the last durable
    /// checkpoint), destroys any suspended-in-place guest's progress,
    /// routes gang members through the gang reclaim path, and removes
    /// the machine from the candidate pool until repair. Failure
    /// injection lowers to the scheduler engine (the closed-form
    /// cluster runner has no machines to crash).
    #[must_use]
    pub fn failures(mut self, model: FailureModel) -> Self {
        self.failures = Some(model);
        self
    }

    /// Central-queue discipline (default: FCFS).
    #[must_use]
    pub fn discipline(mut self, discipline: QueueDiscipline) -> Self {
        self.discipline = discipline;
        self
    }

    /// Maximum estimated owner utilization at which a machine is still
    /// offered to the scheduler (default 1.0 admits every idle
    /// machine).
    #[must_use]
    pub fn admission_threshold(mut self, threshold: f64) -> Self {
        self.admission_threshold = threshold;
        self
    }

    /// Averaging window of the per-machine utilization estimators.
    #[must_use]
    pub fn estimator_tau(mut self, tau: f64) -> Self {
        self.estimator_tau = tau;
        self
    }

    /// Pre-run probe horizon seeding the load estimators (0 disables).
    #[must_use]
    pub fn calibration(mut self, horizon: f64) -> Self {
        self.calibration_horizon = horizon;
        self
    }

    /// Master seed for every stream in the run.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Independent replications to run (default 1).
    #[must_use]
    pub fn replications(mut self, replications: u64) -> Self {
        self.replications = replications;
        self
    }

    /// Safety cap on executed engine events.
    #[must_use]
    pub fn max_events(mut self, max_events: u64) -> Self {
        self.max_events = max_events;
        self
    }

    /// Force a specific execution engine (default: automatic).
    #[must_use]
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Confidence level of the steady-state interval (default: the
    /// paper's 90%).
    #[must_use]
    pub fn confidence(mut self, confidence: f64) -> Self {
        self.confidence = confidence;
        self
    }

    /// Batch count of the steady-state interval (default: the paper's
    /// 20).
    #[must_use]
    pub fn batches(mut self, batches: usize) -> Self {
        self.batches = batches;
        self
    }

    /// Shard replications across up to this many scoped threads
    /// (default 1 = serial). Sharding happens at the experiment level —
    /// each replication keeps its own seeded streams and the engine
    /// stays single-threaded — so the report is byte-identical to the
    /// serial path.
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sim-time interval of the flight recorder's metrics snapshots
    /// (default 100.0). Only [`Sim::run_flight`] reads it — untraced
    /// runs sample nothing.
    #[must_use]
    pub fn metrics_every(mut self, every: f64) -> Self {
        self.metrics_every = every;
        self
    }

    /// Emit a live progress heartbeat on stderr every `every` host
    /// seconds: events handled, events/sec, the sim clock (with % of
    /// the arrival horizon and an ETA when the workload schedules
    /// arrivals), and which event classes moved. Runs lower to the
    /// scheduler engine (the closed-form runner has no event loop to
    /// observe); simulation outputs are bit-identical with or without
    /// the heartbeat.
    #[must_use]
    pub fn progress(mut self, every: f64) -> Self {
        self.progress_every = Some(every);
        self
    }

    /// Trace at the bounded-cost tier: counters and quantile sketches
    /// stay exact, but [`Sim::run_flight`]'s recorder filters the
    /// per-segment record firehose to job/gang lifecycle, throttles
    /// state samples to the metrics grid, and turns the per-event host
    /// clock off (see `FlightRecorder::cheap`).
    #[must_use]
    pub fn trace_cheap(mut self, on: bool) -> Self {
        self.trace_cheap = on;
        self
    }

    /// Bound [`Sim::run_flight`]'s record buffer to a ring of the
    /// newest `capacity` admitted records (0 = unbounded, the
    /// default). Overwrites are counted, never silent.
    #[must_use]
    pub fn trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Replace [`Sim::run_flight`]'s record filter (applied on top of
    /// the tier picked by [`SimBuilder::trace_cheap`]).
    #[must_use]
    pub fn trace_filter(mut self, filter: RecordFilter) -> Self {
        self.trace_filter = Some(filter);
        self
    }

    /// Stream the workload through the engine in chunks of `chunk`
    /// jobs instead of materializing every [`JobSpec`] up front
    /// (default 0 = materialized). The engine pulls the workload's
    /// [`Workload::feed`] lazily and retires each job's record the
    /// moment it completes, so peak memory is O(chunk + pool) — the
    /// path that makes million-job traces tractable. Results are
    /// byte-identical to the materialized run (pinned by the workspace
    /// replay tests), with one caveat: streamed runs deliver per-job
    /// records through the internal sink, so `Report::runs[..].jobs`
    /// stays empty (response statistics and steady state are
    /// unaffected). Streaming requires the scheduler engine and is
    /// incompatible with gang policies and the progress heartbeat;
    /// [`Sim::run_flight`] ignores it and materializes.
    #[must_use]
    pub fn stream_chunk(mut self, chunk: usize) -> Self {
        self.stream_chunk = chunk;
        self
    }

    /// The workload to submit — see [`crate::sim::workload`] for the
    /// closed and open implementations.
    #[must_use]
    pub fn workload(mut self, workload: impl Workload + 'static) -> Self {
        self.workload = Some(Box::new(workload));
        self
    }

    /// Validate the description into a runnable [`Sim`].
    pub fn build(self) -> Result<Sim, SimError> {
        if self.workstations == 0 {
            return Err(SimError::InvalidPool {
                field: "workstations",
                reason: "pool needs at least one machine".into(),
            });
        }
        let (owners, homogeneous) = match self.owners {
            None => {
                return Err(SimError::InvalidPool {
                    field: "owners",
                    reason: "no owner workload configured: call .owners(...)".into(),
                })
            }
            Some(OwnerSpec::Homogeneous(owner)) => (vec![owner; self.workstations as usize], true),
            Some(OwnerSpec::PerMachine(owners)) => {
                if owners.len() != self.workstations as usize {
                    return Err(SimError::InvalidPool {
                        field: "owners",
                        reason: format!(
                            "{} owner workloads for a pool of {}",
                            owners.len(),
                            self.workstations
                        ),
                    });
                }
                (owners, false)
            }
        };
        let workload = self.workload.ok_or(SimError::MissingWorkload)?;
        workload.validate()?;
        self.eviction
            .validate()
            .map_err(|(field, reason)| SimError::InvalidPolicy { field, reason })?;
        self.gang
            .validate()
            .map_err(|(field, reason)| SimError::InvalidPolicy { field, reason })?;
        if let Some(model) = &self.failures {
            model
                .validate()
                .map_err(|(field, reason)| SimError::InvalidPolicy { field, reason })?;
        }
        if self.shards == 0 {
            return Err(SimError::InvalidPool {
                field: "shards",
                reason: "need at least one shard".into(),
            });
        }
        if !(self.admission_threshold.is_finite() && self.admission_threshold > 0.0) {
            return Err(SimError::InvalidPool {
                field: "admission_threshold",
                reason: format!("{} not finite > 0", self.admission_threshold),
            });
        }
        if !(self.estimator_tau.is_finite() && self.estimator_tau > 0.0) {
            return Err(SimError::InvalidPool {
                field: "estimator_tau",
                reason: format!("{} not finite > 0", self.estimator_tau),
            });
        }
        if !(self.calibration_horizon.is_finite() && self.calibration_horizon >= 0.0) {
            return Err(SimError::InvalidPool {
                field: "calibration_horizon",
                reason: format!("{} not finite >= 0", self.calibration_horizon),
            });
        }
        if self.replications == 0 {
            return Err(SimError::InvalidPool {
                field: "replications",
                reason: "need at least one replication".into(),
            });
        }
        if self.max_events == 0 {
            return Err(SimError::InvalidPool {
                field: "max_events",
                reason: "must be positive".into(),
            });
        }
        if !(self.metrics_every.is_finite() && self.metrics_every > 0.0) {
            return Err(SimError::InvalidPool {
                field: "metrics_every",
                reason: format!("{} not finite > 0", self.metrics_every),
            });
        }
        if let Some(every) = self.progress_every {
            if !(every.is_finite() && every > 0.0) {
                return Err(SimError::InvalidPool {
                    field: "progress",
                    reason: format!("{every} not finite > 0"),
                });
            }
        }
        if !(self.confidence > 0.0 && self.confidence < 1.0) {
            return Err(SimError::InvalidWorkload {
                field: "confidence",
                reason: format!("{} not in (0, 1)", self.confidence),
            });
        }
        if workload.is_open() && self.batches < 2 {
            return Err(SimError::InvalidWorkload {
                field: "batches",
                reason: format!(
                    "{} batches cannot form an interval (need >= 2)",
                    self.batches
                ),
            });
        }
        if self.stream_chunk > 0 {
            if self.gang.is_on() {
                return Err(SimError::InvalidPolicy {
                    field: "gang",
                    reason: "gang scheduling needs the whole job set resident and \
                             cannot combine with .stream_chunk(...)"
                        .into(),
                });
            }
            if self.progress_every.is_some() {
                return Err(SimError::InvalidPool {
                    field: "progress",
                    reason: "the progress heartbeat needs a materialized run; drop \
                             .progress(...) or .stream_chunk(...)"
                        .into(),
                });
            }
            if self.backend == Backend::Cluster {
                return Err(SimError::UnsupportedBackend {
                    backend: "cluster",
                    reason: "streamed runs execute on the scheduler engine; drop \
                             .stream_chunk(...) or use Backend::Auto / Backend::Sched"
                        .into(),
                });
            }
        }
        Ok(Sim {
            workstations: self.workstations,
            owners,
            homogeneous,
            placement: self.placement,
            eviction: self.eviction,
            gang: self.gang,
            failures: self.failures,
            discipline: self.discipline,
            admission_threshold: self.admission_threshold,
            estimator_tau: self.estimator_tau,
            calibration_horizon: self.calibration_horizon,
            seed: self.seed,
            replications: self.replications,
            max_events: self.max_events,
            backend: self.backend,
            confidence: self.confidence,
            batches: self.batches,
            shards: self.shards,
            metrics_every: self.metrics_every,
            progress_every: self.progress_every,
            trace_cheap: self.trace_cheap,
            trace_capacity: self.trace_capacity,
            trace_filter: self.trace_filter,
            stream_chunk: self.stream_chunk,
            workload,
        })
    }

    /// Build and run in one call.
    pub fn run(self) -> Result<Report, SimError> {
        self.build()?.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::workload::{closed, poisson, single_job, JobShape};

    fn owner(u: f64) -> OwnerWorkload {
        OwnerWorkload::continuous_exponential(10.0, u).unwrap()
    }

    #[test]
    fn degenerate_auto_matches_forced_sched_engine() {
        let build = |backend| {
            Sim::pool(6)
                .owners(owner(0.10))
                .workload(single_job(6, 250.0))
                .seed(11)
                .backend(backend)
                .run()
                .unwrap()
        };
        let auto = build(Backend::Auto);
        let sched = build(Backend::Sched);
        let cluster = build(Backend::Cluster);
        assert_eq!(auto.mean_makespan(), sched.mean_makespan());
        assert_eq!(auto.mean_makespan(), cluster.mean_makespan());
        assert_eq!(
            auto.runs[0].jobs[0].response_time(),
            sched.runs[0].jobs[0].response_time()
        );
        assert_eq!(auto.runs[0].evictions, sched.runs[0].evictions);
        assert!(auto.is_consistent() && sched.is_consistent());
    }

    #[test]
    fn cluster_backend_rejects_non_degenerate_configs() {
        let base = || Sim::pool(4).owners(owner(0.10)).backend(Backend::Cluster);
        // Two jobs: not degenerate.
        let err = base()
            .workload(closed(vec![
                JobSpec::at_zero(4, 50.0),
                JobSpec::at_zero(4, 50.0),
            ]))
            .run()
            .unwrap_err();
        assert!(matches!(err, SimError::UnsupportedBackend { .. }));
        // Restart eviction: not degenerate.
        let err = base()
            .workload(single_job(4, 50.0))
            .eviction(EvictionPolicy::Restart)
            .run()
            .unwrap_err();
        assert!(matches!(err, SimError::UnsupportedBackend { .. }));
        // Open workload: not degenerate.
        let err = base()
            .workload(poisson(0.01, JobShape::new(4, 50.0)).jobs(10).warmup(0))
            .run()
            .unwrap_err();
        assert!(matches!(err, SimError::UnsupportedBackend { .. }));
    }

    #[test]
    fn open_workload_reports_steady_state() {
        let report = Sim::pool(8)
            .owners(owner(0.05))
            .workload(poisson(0.02, JobShape::new(2, 30.0)).jobs(120).warmup(20))
            .batches(10)
            .seed(3)
            .run()
            .unwrap();
        let ss = report.steady_state.expect("open => steady state");
        assert_eq!(report.response.jobs, 100);
        assert_eq!(ss.warmup_dropped, 20);
        assert_eq!(ss.response.batches, 10);
        assert!(ss.response.mean >= 30.0, "response >= dedicated demand");
        assert!(ss.response.contains(report.response.mean));
        assert!(report.is_consistent());
    }

    #[test]
    fn closed_workload_has_no_steady_state() {
        let report = Sim::pool(4)
            .owners(owner(0.05))
            .workload(closed(vec![JobSpec::at_zero(8, 40.0)]))
            .run()
            .unwrap();
        assert!(report.steady_state.is_none());
        assert_eq!(report.response.jobs, 1);
    }

    #[test]
    fn replications_pool_every_job() {
        let report = Sim::pool(4)
            .owners(owner(0.10))
            .workload(closed(vec![JobSpec::at_zero(4, 60.0)]))
            .replications(3)
            .backend(Backend::Sched)
            .run()
            .unwrap();
        assert_eq!(report.replications(), 3);
        assert_eq!(report.response.jobs, 3);
        assert_ne!(
            report.runs[0].makespan, report.runs[1].makespan,
            "replications must diverge"
        );
    }

    #[test]
    fn build_rejects_bad_pools() {
        let err = Sim::pool(0)
            .owners(owner(0.1))
            .workload(single_job(1, 10.0))
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::InvalidPool {
                field: "workstations",
                ..
            }
        ));
        let err = Sim::pool(4)
            .workload(single_job(4, 10.0))
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::InvalidPool {
                field: "owners",
                ..
            }
        ));
        let err = Sim::pool(4).owners(owner(0.1)).build().unwrap_err();
        assert!(matches!(err, SimError::MissingWorkload));
        let err = Sim::pool(4)
            .owners(owner(0.1))
            .workload(single_job(4, 10.0))
            .progress(0.0)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::InvalidPool {
                field: "progress",
                ..
            }
        ));
        let err = Sim::pool(4)
            .owners(vec![owner(0.1); 3])
            .workload(single_job(4, 10.0))
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::InvalidPool {
                field: "owners",
                ..
            }
        ));
    }

    #[test]
    fn build_rejects_bad_policies_and_knobs() {
        let base = || {
            Sim::pool(4)
                .owners(owner(0.1))
                .workload(single_job(4, 10.0))
        };
        let err = base()
            .eviction(EvictionPolicy::Checkpoint {
                interval: -5.0,
                overhead: 1.0,
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidPolicy { .. }));
        assert!(base().admission_threshold(0.0).build().is_err());
        assert!(base().admission_threshold(f64::NAN).build().is_err());
        assert!(base().estimator_tau(-1.0).build().is_err());
        assert!(base().calibration(f64::INFINITY).build().is_err());
        assert!(base().replications(0).build().is_err());
        assert!(base().max_events(0).build().is_err());
        assert!(base().confidence(1.5).build().is_err());
    }

    #[test]
    fn lower_exposes_the_sched_config() {
        let sim = Sim::pool(5)
            .owners(owner(0.1))
            .workload(single_job(5, 100.0))
            .seed(77)
            .build()
            .unwrap();
        let cfg = sim.lower(2).unwrap();
        assert_eq!(cfg.owners.len(), 5);
        assert_eq!(cfg.seed, 77);
        assert_eq!(cfg.replication, 2);
        assert_eq!(cfg.jobs, vec![JobSpec::at_zero(5, 100.0)]);
        cfg.validate().unwrap();
    }

    #[test]
    fn gang_knob_lowers_and_blocks_the_fast_path() {
        let sim = Sim::pool(4)
            .owners(owner(0.1))
            .gang(GangPolicy::SuspendAll)
            .workload(single_job(4, 100.0))
            .seed(5)
            .build()
            .unwrap();
        assert_eq!(sim.lower(0).unwrap().gang, GangPolicy::SuspendAll);
        assert!(sim.label().contains("gang suspend-all"));
        // A gang policy disqualifies the closed-form cluster runner.
        let err = Sim::pool(4)
            .owners(owner(0.1))
            .gang(GangPolicy::SuspendAll)
            .workload(single_job(4, 100.0))
            .backend(Backend::Cluster)
            .run()
            .unwrap_err();
        assert!(matches!(err, SimError::UnsupportedBackend { .. }));
        // Invalid gang parameters are typed errors.
        let err = Sim::pool(4)
            .owners(owner(0.1))
            .gang(GangPolicy::MigrateAll { overhead: -3.0 })
            .workload(single_job(4, 100.0))
            .build()
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidPolicy { .. }));
    }

    #[test]
    fn partial_gang_knob_lowers_and_validates() {
        let sim = Sim::pool(4)
            .owners(owner(0.1))
            .gang(GangPolicy::Partial { min_running: 2 })
            .workload(single_job(4, 100.0))
            .build()
            .unwrap();
        assert_eq!(
            sim.lower(0).unwrap().gang,
            GangPolicy::Partial { min_running: 2 }
        );
        assert!(
            sim.label().contains("gang partial(min=2)"),
            "{}",
            sim.label()
        );
        // A partial floor wider than any job clamps per job, so jobs
        // wider than the pool are fine as long as the floor fits...
        let report = Sim::pool(4)
            .owners(owner(0.1))
            .gang(GangPolicy::Partial { min_running: 2 })
            .workload(single_job(6, 40.0))
            .run()
            .unwrap();
        assert!(report.is_consistent());
        assert_eq!(report.runs[0].completed_tasks, 6);
        assert_eq!(report.runs[0].gang.floor_violations, 0);
        // ...but invalid floors are typed errors.
        let err = Sim::pool(4)
            .owners(owner(0.1))
            .gang(GangPolicy::Partial { min_running: 0 })
            .workload(single_job(4, 100.0))
            .build()
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidPolicy { .. }));
        let err = Sim::pool(4)
            .owners(owner(0.1))
            .gang(GangPolicy::PartialFrac {
                min_running_frac: 1.5,
            })
            .workload(single_job(4, 100.0))
            .build()
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidPolicy { .. }));
    }

    #[test]
    fn gang_runs_conserve_work_and_report_gang_metrics() {
        let report = Sim::pool(6)
            .owners(owner(0.15))
            .gang(GangPolicy::SuspendAll)
            .workload(closed(vec![
                JobSpec::at_zero(4, 60.0),
                JobSpec::at_zero(4, 60.0),
            ]))
            .seed(9)
            .run()
            .unwrap();
        assert!(report.is_consistent());
        let m = &report.runs[0];
        assert_eq!(m.gang.lockstep_violations, 0);
        assert!(m.gang.gang_starts >= 2);
        assert!(
            report.mean_coalloc_wait() > 0.0,
            "two 4-wide gangs on 6 machines must queue"
        );
    }

    #[test]
    fn failures_knob_lowers_validates_and_blocks_the_fast_path() {
        use nds_sched::FailureModel;
        let model = FailureModel::exponential(150.0, 20.0).unwrap();
        let sim = Sim::pool(4)
            .owners(owner(0.1))
            .failures(model)
            .workload(single_job(4, 100.0))
            .build()
            .unwrap();
        assert_eq!(sim.lower(0).unwrap().failures, Some(model));
        assert!(sim.label().contains("mtbf"), "{}", sim.label());
        // A failure model disqualifies the closed-form cluster runner...
        let err = Sim::pool(4)
            .owners(owner(0.1))
            .failures(model)
            .workload(single_job(4, 100.0))
            .backend(Backend::Cluster)
            .run()
            .unwrap_err();
        assert!(matches!(err, SimError::UnsupportedBackend { .. }));
        // ...and the auto backend routes to the scheduler engine, which
        // reports the crash-side metrics.
        let report = Sim::pool(4)
            .owners(owner(0.1))
            .failures(FailureModel::exponential(40.0, 5.0).unwrap())
            .workload(single_job(4, 100.0))
            .seed(31)
            .run()
            .unwrap();
        assert!(report.is_consistent());
        assert!(report.runs[0].crashes > 0, "mtbf 40 over a >100s run");
        assert!(report.runs[0].downtime > 0.0);
    }

    #[test]
    fn no_failure_model_is_bit_identical_to_the_pre_failure_engine() {
        // `.failures(...)` absent must leave every sample path exactly
        // where it was: the builder lowers `failures: None` and the
        // engine draws nothing from the failure streams.
        let build = |with_rare_failures: bool| {
            let mut b = Sim::pool(5)
                .owners(owner(0.12))
                .eviction(EvictionPolicy::Restart)
                .workload(closed(vec![JobSpec::at_zero(7, 45.0)]))
                .seed(17)
                .backend(Backend::Sched);
            if with_rare_failures {
                // So rare the horizon never reaches the first crash.
                b = b.failures(nds_sched::FailureModel::exponential(1e12, 1.0).unwrap());
            }
            b.run().unwrap()
        };
        let plain = build(false);
        let rare = build(true);
        assert_eq!(plain.runs[0].makespan, rare.runs[0].makespan);
        assert_eq!(plain.runs[0].delivered, rare.runs[0].delivered);
        assert_eq!(plain.runs[0].evictions, rare.runs[0].evictions);
        assert_eq!(rare.runs[0].crashes, 0);
    }

    #[test]
    fn failure_models_validate_at_the_constructors() {
        use nds_sched::{FailureModel, Lifetime};
        // Bad parameters never reach build(): the stats constructors
        // are the only way to make a Lifetime, and they reject up
        // front. build() re-validates anyway (defense in depth for the
        // non_exhaustive enum) and accepts every constructible model.
        assert!(FailureModel::exponential(0.0, 5.0).is_err());
        assert!(Lifetime::exponential(f64::NAN).is_err());
        let ok = Sim::pool(2)
            .owners(owner(0.1))
            .failures(FailureModel::exponential(100.0, 10.0).unwrap())
            .workload(single_job(2, 10.0))
            .build();
        assert!(ok.is_ok());
    }

    #[test]
    fn sharded_replications_are_byte_identical_to_serial() {
        let build = |shards| {
            Sim::pool(6)
                .owners(owner(0.12))
                .eviction(EvictionPolicy::Migrate { overhead: 2.0 })
                .workload(closed(vec![
                    JobSpec::at_zero(8, 70.0),
                    JobSpec::at_zero(4, 35.0),
                ]))
                .seed(13)
                .replications(6)
                .shards(shards)
                .run()
                .unwrap()
        };
        assert_eq!(build(1), build(4), "sharding must not change the report");
        assert!(Sim::pool(4)
            .owners(owner(0.1))
            .workload(single_job(4, 10.0))
            .shards(0)
            .build()
            .is_err());
    }

    #[test]
    fn streamed_runs_match_materialized_reports() {
        let build = |chunk: usize| {
            let mut b = Sim::pool(8)
                .owners(owner(0.08))
                .workload(poisson(0.02, JobShape::new(2, 30.0)).jobs(120).warmup(20))
                .batches(10)
                .seed(77)
                .replications(2);
            if chunk > 0 {
                b = b.stream_chunk(chunk);
            }
            b.run().unwrap()
        };
        let materialized = build(0);
        for chunk in [1, 7, 1000] {
            let streamed = build(chunk);
            assert_eq!(materialized.response, streamed.response, "chunk {chunk}");
            assert_eq!(materialized.steady_state, streamed.steady_state);
            for (m, s) in materialized.runs.iter().zip(&streamed.runs) {
                assert_eq!(m.makespan, s.makespan);
                assert_eq!(m.evictions, s.evictions);
                assert_eq!(m.delivered, s.delivered);
                assert!(
                    s.jobs.is_empty(),
                    "streamed runs deliver records through the sink only"
                );
            }
        }
    }

    #[test]
    fn trace_workloads_stream_shard_and_replay_identically() {
        let gen = crate::sim::SyntheticTrace::datacenter(12, 400).warmup(40);
        let owners = gen.owners(21, 0).unwrap();
        let build = |shards: usize| {
            Sim::pool(gen.machines())
                .owners(owners.clone())
                .workload(gen)
                .stream_chunk(64)
                .seed(21)
                .replications(4)
                .shards(shards)
                .run()
                .unwrap()
        };
        let serial = build(1);
        assert_eq!(serial, build(4), "sharding must not change the report");
        assert_eq!(serial, build(1), "replay must be byte-identical");
        assert!(serial.steady_state.is_some(), "traces are open workloads");
        assert!(serial.is_consistent());
    }

    #[test]
    fn stream_chunk_rejects_incompatible_knobs() {
        let base = || {
            Sim::pool(4)
                .owners(owner(0.1))
                .workload(poisson(0.05, JobShape::new(2, 20.0)).jobs(40).warmup(4))
                .stream_chunk(8)
        };
        let err = base().gang(GangPolicy::SuspendAll).build().unwrap_err();
        assert!(matches!(err, SimError::InvalidPolicy { field: "gang", .. }));
        let err = base().progress(1.0).build().unwrap_err();
        assert!(matches!(
            err,
            SimError::InvalidPool {
                field: "progress",
                ..
            }
        ));
        let err = base().backend(Backend::Cluster).build().unwrap_err();
        assert!(matches!(err, SimError::UnsupportedBackend { .. }));
        // The compatible configuration builds and runs.
        assert!(base().run().unwrap().is_consistent());
    }

    #[test]
    fn heterogeneous_pools_run_on_the_sched_engine() {
        let owners: Vec<OwnerWorkload> = (0..4)
            .map(|i| owner(if i < 2 { 0.02 } else { 0.30 }))
            .collect();
        let report = Sim::pool(4)
            .owners(owners)
            .workload(single_job(4, 80.0))
            .run()
            .unwrap();
        // Heterogeneous => never the cluster fast path; the pool gauge
        // is only maintained by the scheduler engine.
        assert!(report.runs[0].mean_available_machines > 0.0);
        assert!(report.is_consistent());
    }
}
