//! Trace-driven datacenter workloads.
//!
//! The paper's workload is one statically sliced job; its §5 future
//! work asks for "more complex workloads". This module closes the loop
//! with real-trace replay and a deterministic synthetic generator:
//!
//! * [`TraceWorkload`] — a [`Workload`] ingesting job traces from CSV
//!   or JSONL (`arrival, tasks, task_demand[, owner_class]`), with
//!   strict validation: arrivals must be non-decreasing (ties keep
//!   input order — submission order is the tie-break, deterministically),
//!   every field finite and positive, and every violation a typed
//!   [`SimError`] naming the offending line — never a panic.
//! * [`SyntheticTrace`] — a deterministic generator in the shape of
//!   published datacenter traces: job arrivals follow a
//!   sinusoid-modulated (diurnal) Poisson process sampled by thinning,
//!   per-task demands are heavy-tailed bounded-Pareto draws, and the
//!   machine population splits into *hot* (interactive, high owner
//!   utilization) and *cool* (mostly idle) owner populations. The whole
//!   day is a pure function of a `(seed, replication)` pair.
//!
//! Both implement [`Workload::feed`], so a million-job day streams
//! through [`SchedConfig::run_streamed`](nds_sched::SchedConfig) in
//! bounded memory: the synthetic sampler draws jobs lazily, and the
//! trace replays its rows chunk by chunk.
//!
//! File format (CSV; `#` comments and blank lines are skipped, the
//! header row is optional):
//!
//! ```text
//! arrival,tasks,task_demand,owner_class
//! 0.0,4,120.5,batch
//! 3.25,1,30.0,interactive
//! ```
//!
//! JSONL carries one flat object per line with the same keys:
//! `{"arrival": 3.25, "tasks": 1, "task_demand": 30.0}`.

use crate::sim::error::SimError;
use crate::sim::workload::Workload;
use nds_cluster::owner::OwnerWorkload;
use nds_sched::feed::JobFeed;
use nds_sched::{JobSpec, SchedError};
use nds_stats::distributions::{BoundedPareto, Distribution};
use nds_stats::rng::{StreamFactory, Xoshiro256StarStar};
use std::f64::consts::TAU;
use std::path::Path;

/// Stream label for the synthetic trace's job sampler.
const TRACE_STREAM: &str = "sim-trace";
/// Stream label for the synthetic trace's hot/cool owner assignment.
const OWNER_STREAM: &str = "trace-owners";

fn bad_trace(reason: String) -> SimError {
    SimError::InvalidWorkload {
        field: "trace",
        reason,
    }
}

/// A job trace loaded from disk (or built in memory): an explicit,
/// time-sorted job list replayed identically on every replication.
///
/// Ingested from CSV ([`TraceWorkload::from_csv_str`]) or JSONL
/// ([`TraceWorkload::from_jsonl_str`]), or sniffed by extension from a
/// path ([`TraceWorkload::from_path`]). Serializes back via
/// [`TraceWorkload::to_csv_string`] / [`TraceWorkload::to_jsonl_string`];
/// floats round-trip exactly (Rust's shortest-repr formatting), which
/// the workspace's round-trip tests pin.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceWorkload {
    jobs: Vec<JobSpec>,
    /// Per-job owner class, parallel to `jobs`; `None` when the trace
    /// carries no class column. Classes label rows for reports and
    /// round-trip fidelity — the engine ignores them.
    classes: Option<Vec<String>>,
    /// `None` = the 10% default.
    warmup: Option<usize>,
}

impl TraceWorkload {
    /// Wrap an explicit, already-sorted job list (no class column).
    pub fn new(jobs: Vec<JobSpec>) -> Result<Self, SimError> {
        let trace = Self {
            jobs,
            classes: None,
            warmup: None,
        };
        trace.check()?;
        Ok(trace)
    }

    /// Wrap a job list with one owner class per job.
    pub fn with_classes(jobs: Vec<JobSpec>, classes: Vec<String>) -> Result<Self, SimError> {
        if classes.len() != jobs.len() {
            return Err(bad_trace(format!(
                "{} owner classes for {} jobs",
                classes.len(),
                jobs.len()
            )));
        }
        let trace = Self {
            jobs,
            classes: Some(classes),
            warmup: None,
        };
        trace.check()?;
        Ok(trace)
    }

    /// Parse the CSV trace format: `arrival,tasks,task_demand` with an
    /// optional fourth `owner_class` column, an optional header row,
    /// `#` comments, and blank lines. Every malformed row is a typed
    /// error naming its 1-based line number.
    pub fn from_csv_str(text: &str) -> Result<Self, SimError> {
        let mut jobs = Vec::new();
        let mut classes: Option<Vec<String>> = None;
        let mut arity: Option<usize> = None;
        for (idx, raw) in text.lines().enumerate() {
            let row = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split(',').map(str::trim).collect();
            if jobs.is_empty() && arity.is_none() && fields[0].eq_ignore_ascii_case("arrival") {
                match fields.as_slice() {
                    ["arrival", "tasks", "task_demand"] => arity = Some(3),
                    ["arrival", "tasks", "task_demand", "owner_class"] => {
                        arity = Some(4);
                        classes = Some(Vec::new());
                    }
                    _ => {
                        return Err(bad_trace(format!(
                            "line {row}: header must be \
                             'arrival,tasks,task_demand[,owner_class]', got '{line}'"
                        )))
                    }
                }
                continue;
            }
            let want = *arity.get_or_insert_with(|| {
                if fields.len() == 4 {
                    classes = Some(Vec::new());
                }
                fields.len()
            });
            if fields.len() != want || !(3..=4).contains(&want) {
                return Err(bad_trace(format!(
                    "line {row}: expected {want} comma-separated fields, got {}",
                    fields.len()
                )));
            }
            let arrival: f64 = fields[0]
                .parse()
                .map_err(|_| bad_trace(format!("line {row}: arrival '{}'", fields[0])))?;
            let tasks: u32 = fields[1]
                .parse()
                .map_err(|_| bad_trace(format!("line {row}: tasks '{}'", fields[1])))?;
            let task_demand: f64 = fields[2]
                .parse()
                .map_err(|_| bad_trace(format!("line {row}: task_demand '{}'", fields[2])))?;
            let spec = JobSpec {
                tasks,
                task_demand,
                arrival,
            };
            check_row(row, &spec, jobs.last())?;
            if let Some(classes) = &mut classes {
                let class = fields[3];
                check_class(row, class)?;
                classes.push(class.to_string());
            }
            jobs.push(spec);
        }
        let trace = Self {
            jobs,
            classes,
            warmup: None,
        };
        trace.check()?;
        Ok(trace)
    }

    /// Parse the JSONL trace format: one flat object per line with
    /// keys `arrival`, `tasks`, `task_demand`, and optionally
    /// `owner_class`. Blank lines and `#` comments are skipped; any
    /// unknown key, non-flat value, or malformed row is a typed error
    /// naming its line.
    pub fn from_jsonl_str(text: &str) -> Result<Self, SimError> {
        let mut jobs = Vec::new();
        let mut classes: Option<Vec<String>> = None;
        for (idx, raw) in text.lines().enumerate() {
            let row = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let pairs = parse_flat_json(row, line)?;
            let (mut arrival, mut tasks, mut task_demand, mut class) = (None, None, None, None);
            for (key, value) in pairs {
                match (key.as_str(), value) {
                    ("arrival", JsonValue::Number(x)) => arrival = Some(x),
                    ("task_demand", JsonValue::Number(x)) => task_demand = Some(x),
                    ("tasks", JsonValue::Number(x)) => {
                        if x.fract() != 0.0 || !(0.0..=f64::from(u32::MAX)).contains(&x) {
                            return Err(bad_trace(format!("line {row}: tasks {x} is not a u32")));
                        }
                        tasks = Some(x as u32);
                    }
                    ("owner_class", JsonValue::String(s)) => {
                        check_class(row, &s)?;
                        class = Some(s);
                    }
                    (key, _) => {
                        return Err(bad_trace(format!(
                            "line {row}: unexpected key or value type for '{key}'"
                        )))
                    }
                }
            }
            let missing = |name| bad_trace(format!("line {row}: missing key '{name}'"));
            let spec = JobSpec {
                tasks: tasks.ok_or_else(|| missing("tasks"))?,
                task_demand: task_demand.ok_or_else(|| missing("task_demand"))?,
                arrival: arrival.ok_or_else(|| missing("arrival"))?,
            };
            check_row(row, &spec, jobs.last())?;
            match (&mut classes, class) {
                (None, Some(c)) if jobs.is_empty() => classes = Some(vec![c]),
                (Some(classes), Some(c)) => classes.push(c),
                (None, None) => {}
                _ => {
                    return Err(bad_trace(format!(
                        "line {row}: owner_class must appear on every row or none"
                    )))
                }
            }
            jobs.push(spec);
        }
        let trace = Self {
            jobs,
            classes,
            warmup: None,
        };
        trace.check()?;
        Ok(trace)
    }

    /// Load a trace file, dispatching on extension: `.csv` parses as
    /// CSV, `.jsonl` / `.ndjson` as JSONL.
    pub fn from_path(path: impl AsRef<Path>) -> Result<Self, SimError> {
        let path = path.as_ref();
        let ext = path
            .extension()
            .and_then(|e| e.to_str())
            .unwrap_or_default()
            .to_ascii_lowercase();
        let text = std::fs::read_to_string(path)
            .map_err(|e| bad_trace(format!("{}: {e}", path.display())))?;
        match ext.as_str() {
            "csv" => Self::from_csv_str(&text),
            "jsonl" | "ndjson" => Self::from_jsonl_str(&text),
            other => Err(bad_trace(format!(
                "{}: unknown trace extension '.{other}' (expected .csv, .jsonl, or .ndjson)",
                path.display()
            ))),
        }
    }

    /// Serialize back to the CSV format [`TraceWorkload::from_csv_str`]
    /// parses; `parse(serialize(t)) == t` bit-for-bit.
    pub fn to_csv_string(&self) -> String {
        let mut out = String::new();
        out.push_str(match &self.classes {
            Some(_) => "arrival,tasks,task_demand,owner_class\n",
            None => "arrival,tasks,task_demand\n",
        });
        for (i, j) in self.jobs.iter().enumerate() {
            match &self.classes {
                Some(classes) => out.push_str(&format!(
                    "{},{},{},{}\n",
                    j.arrival, j.tasks, j.task_demand, classes[i]
                )),
                None => out.push_str(&format!("{},{},{}\n", j.arrival, j.tasks, j.task_demand)),
            }
        }
        out
    }

    /// Serialize back to the JSONL format
    /// [`TraceWorkload::from_jsonl_str`] parses; round-trips exactly.
    pub fn to_jsonl_string(&self) -> String {
        let mut out = String::new();
        for (i, j) in self.jobs.iter().enumerate() {
            out.push_str(&format!(
                "{{\"arrival\": {}, \"tasks\": {}, \"task_demand\": {}",
                j.arrival, j.tasks, j.task_demand
            ));
            if let Some(classes) = &self.classes {
                out.push_str(&format!(", \"owner_class\": \"{}\"", classes[i]));
            }
            out.push_str("}\n");
        }
        out
    }

    /// The replayed job list.
    pub fn jobs(&self) -> &[JobSpec] {
        &self.jobs
    }

    /// Per-job owner classes, if the trace carried the column.
    pub fn owner_classes(&self) -> Option<&[String]> {
        self.classes.as_deref()
    }

    /// Override the warm-up prefix (default: 10% of the trace).
    #[must_use]
    pub fn warmup(mut self, warmup: usize) -> Self {
        self.warmup = Some(warmup);
        self
    }

    fn check(&self) -> Result<(), SimError> {
        if self.jobs.is_empty() {
            return Err(bad_trace("trace contains no jobs".into()));
        }
        for (i, pair) in self.jobs.windows(2).enumerate() {
            if pair[1].arrival < pair[0].arrival {
                return Err(bad_trace(format!(
                    "arrivals regress: job {} at {} precedes job {} at {}",
                    i + 1,
                    pair[1].arrival,
                    i,
                    pair[0].arrival
                )));
            }
        }
        for (i, spec) in self.jobs.iter().enumerate() {
            check_row(i + 1, spec, None)?;
        }
        if let Some(classes) = &self.classes {
            for (i, class) in classes.iter().enumerate() {
                check_class(i + 1, class)?;
            }
        }
        Ok(())
    }
}

impl Workload for TraceWorkload {
    fn generate(&self, _seed: u64, _replication: u64) -> Result<Vec<JobSpec>, SimError> {
        self.validate()?;
        Ok(self.jobs.clone()) // ndslint::allow(no-alloc-in-hot-path, reason = "generate materializes the whole trace by contract; the hot path uses feed")
    }

    fn warmup_jobs(&self) -> usize {
        self.warmup.unwrap_or(self.jobs.len() / 10)
    }

    fn is_open(&self) -> bool {
        true
    }

    fn label(&self) -> String {
        let span = self.jobs.last().map_or(0.0, |j| j.arrival);
        format!("trace({} jobs, span {span})", self.jobs.len())
    }

    fn validate(&self) -> Result<(), SimError> {
        self.check()?;
        if self.warmup_jobs() >= self.jobs.len() {
            return Err(bad_trace(format!(
                "warm-up {} must leave observed jobs (trace has {})",
                self.warmup_jobs(),
                self.jobs.len()
            )));
        }
        Ok(())
    }

    fn feed(&self, _seed: u64, _replication: u64) -> Result<Box<dyn JobFeed + '_>, SimError> {
        self.validate()?;
        Ok(Box::new(nds_sched::feed::SliceFeed::new(&self.jobs))) // ndslint::allow(no-alloc-in-hot-path, reason = "one boxed feed per replication is setup, not steady state")
    }
}

/// Shared per-row checks: finite positive fields and (when the
/// previous row is given) non-decreasing arrivals. `row` is 1-based
/// for error messages.
fn check_row(row: usize, spec: &JobSpec, prev: Option<&JobSpec>) -> Result<(), SimError> {
    if spec.tasks == 0 {
        return Err(bad_trace(format!("line {row}: zero tasks")));
    }
    if !(spec.task_demand.is_finite() && spec.task_demand > 0.0) {
        return Err(bad_trace(format!(
            "line {row}: task_demand {} not finite > 0",
            spec.task_demand
        )));
    }
    if !(spec.arrival.is_finite() && spec.arrival >= 0.0) {
        return Err(bad_trace(format!(
            "line {row}: arrival {} not finite >= 0",
            spec.arrival
        )));
    }
    if let Some(prev) = prev {
        if spec.arrival < prev.arrival {
            return Err(bad_trace(format!(
                "line {row}: arrival {} precedes previous arrival {} — traces must be \
                 time-sorted (equal instants keep input order)",
                spec.arrival, prev.arrival
            )));
        }
    }
    Ok(())
}

/// Owner classes are bare atoms: they must survive a CSV cell and a
/// JSON string without any quoting machinery.
fn check_class(row: usize, class: &str) -> Result<(), SimError> {
    if class.is_empty() || class.contains([',', '"', '\\', '\n', '\r']) {
        return Err(bad_trace(format!(
            "line {row}: owner_class '{class}' must be non-empty without , \" \\ or newlines"
        )));
    }
    Ok(())
}

/// A flat JSON scalar: number or string (all a trace row needs).
enum JsonValue {
    Number(f64),
    String(String),
}

/// Parse one flat JSON object (`{"k": 1.5, "s": "v"}`) into key/value
/// pairs. Deliberately minimal — no nesting, no arrays, no
/// null/bool — so every trace row is readable at a glance and the
/// parser has nothing to get wrong. Escapes in strings are rejected
/// (classes are bare atoms, per [`check_class`]).
fn parse_flat_json(row: usize, line: &str) -> Result<Vec<(String, JsonValue)>, SimError> {
    let bad = |what: &str| bad_trace(format!("line {row}: {what}"));
    let inner = line
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| bad("expected one {...} object"))?
        .trim();
    let mut pairs = Vec::new(); // ndslint::allow(no-alloc-in-hot-path, reason = "parse-time row buffer; ingest runs once before the simulation")
    if inner.is_empty() {
        return Ok(pairs);
    }
    let mut rest = inner;
    loop {
        rest = rest.trim_start();
        let body = rest
            .strip_prefix('"')
            .ok_or_else(|| bad("expected a quoted key"))?;
        let close = body
            .find('"')
            .ok_or_else(|| bad("unterminated key string"))?;
        let key = &body[..close];
        rest = body[close + 1..].trim_start();
        rest = rest
            .strip_prefix(':')
            .ok_or_else(|| bad("expected ':' after key"))?
            .trim_start();
        let value = if let Some(body) = rest.strip_prefix('"') {
            let close = body
                .find('"')
                .ok_or_else(|| bad("unterminated value string"))?;
            let s = &body[..close];
            if s.contains('\\') {
                return Err(bad("escape sequences are not supported"));
            }
            rest = &body[close + 1..];
            JsonValue::String(s.to_string())
        } else {
            let end = rest.find([',', '}', ' ', '\t']).unwrap_or(rest.len());
            let token = &rest[..end];
            let x: f64 = token
                .parse()
                .map_err(|_| bad_trace(format!("line {row}: bad number '{token}'")))?;
            rest = &rest[end..];
            JsonValue::Number(x)
        };
        pairs.push((key.to_string(), value));
        rest = rest.trim_start();
        match rest.strip_prefix(',') {
            Some(r) => rest = r,
            None if rest.is_empty() => return Ok(pairs),
            None => return Err(bad("expected ',' between pairs")),
        }
    }
}

/// A deterministic synthetic datacenter day: diurnal Poisson arrivals
/// (sinusoid-modulated rate, sampled exactly by thinning), bounded-
/// Pareto per-task demands, uniform task widths, and a machine
/// population split into hot and cool owner classes. Everything is a
/// pure function of `(seed, replication)` — rerunning a day replays it
/// bit-for-bit, and the streaming feed draws it lazily.
///
/// `SyntheticTrace::datacenter(2_000, 1_000_000)` is "a day of a
/// 2k-machine cluster" in one call; every knob has a builder setter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticTrace {
    machines: u32,
    jobs: usize,
    /// Diurnal period (the "day"; arrival rate completes one sinusoid
    /// cycle per period).
    day: f64,
    /// Mean arrival rate λ₀ (jobs per time unit).
    base_rate: f64,
    /// Sinusoid amplitude in `[0, 1)`: λ(t) = λ₀·(1 + A·sin(2πt/day)).
    amplitude: f64,
    /// Bounded-Pareto tail index for per-task demand.
    alpha: f64,
    /// Smallest per-task demand.
    min_demand: f64,
    /// Largest per-task demand.
    max_demand: f64,
    /// Task widths are uniform on `1..=max_tasks`.
    max_tasks: u32,
    /// Fraction of machines whose owners are *hot* (interactive).
    hot_fraction: f64,
    /// Owner utilization on hot machines.
    hot_utilization: f64,
    /// Owner utilization on cool machines.
    cool_utilization: f64,
    /// Mean owner think time (both classes).
    owner_think: f64,
    /// `None` = the 10% default.
    warmup: Option<usize>,
}

impl SyntheticTrace {
    /// A day of a `machines`-machine cluster serving `jobs` jobs:
    /// arrivals average one day-spanning window (λ₀ = jobs/day) with a
    /// 60% diurnal swing, per-task demands Pareto(α=1.5) over
    /// `[30, 30_000]` time units, widths up to 64 tasks, and 30% hot /
    /// 70% cool owners.
    pub fn datacenter(machines: u32, jobs: usize) -> Self {
        let day = 86_400.0;
        Self {
            machines,
            jobs,
            day,
            base_rate: jobs as f64 / day,
            amplitude: 0.6,
            alpha: 1.5,
            min_demand: 30.0,
            max_demand: 30_000.0,
            max_tasks: 64.min(machines.max(1)),
            hot_fraction: 0.3,
            hot_utilization: 0.30,
            cool_utilization: 0.05,
            owner_think: 600.0,
            warmup: None,
        }
    }

    /// Set the diurnal period and rescale the base rate to keep the
    /// window spanning one period.
    #[must_use]
    pub fn day(mut self, day: f64) -> Self {
        self.day = day;
        self.base_rate = self.jobs as f64 / day;
        self
    }

    /// Set the mean arrival rate λ₀ directly.
    #[must_use]
    pub fn base_rate(mut self, rate: f64) -> Self {
        self.base_rate = rate;
        self
    }

    /// Set the diurnal amplitude (`0 <= A < 1`).
    #[must_use]
    pub fn amplitude(mut self, amplitude: f64) -> Self {
        self.amplitude = amplitude;
        self
    }

    /// Set the bounded-Pareto demand family: tail index `alpha` on
    /// `[min_demand, max_demand)`.
    #[must_use]
    pub fn demands(mut self, alpha: f64, min_demand: f64, max_demand: f64) -> Self {
        self.alpha = alpha;
        self.min_demand = min_demand;
        self.max_demand = max_demand;
        self
    }

    /// Set the maximum task width (widths are uniform on `1..=max`).
    #[must_use]
    pub fn max_tasks(mut self, max_tasks: u32) -> Self {
        self.max_tasks = max_tasks;
        self
    }

    /// Set the hot/cool owner split: `fraction` of machines run owners
    /// at `hot` utilization, the rest at `cool`.
    #[must_use]
    pub fn owner_mix(mut self, fraction: f64, hot: f64, cool: f64) -> Self {
        self.hot_fraction = fraction;
        self.hot_utilization = hot;
        self.cool_utilization = cool;
        self
    }

    /// Set the mean owner think time.
    #[must_use]
    pub fn owner_think(mut self, think: f64) -> Self {
        self.owner_think = think;
        self
    }

    /// Override the warm-up prefix (default: 10% of the window).
    #[must_use]
    pub fn warmup(mut self, warmup: usize) -> Self {
        self.warmup = Some(warmup);
        self
    }

    /// Number of machines in the modeled cluster.
    pub fn machines(&self) -> u32 {
        self.machines
    }

    /// The per-machine owner population for one replication: machine
    /// `i` is hot with probability `hot_fraction` (dedicated RNG
    /// stream, so the assignment never perturbs the job sample path).
    /// Feed the result to
    /// [`SimBuilder::owners`](crate::sim::SimBuilder::owners).
    pub fn owners(&self, seed: u64, replication: u64) -> Result<Vec<OwnerWorkload>, SimError> {
        self.validate()?;
        let mut rng = StreamFactory::new(seed).labeled_stream(OWNER_STREAM, replication);
        (0..self.machines)
            .map(|_| {
                let util = if rng.bernoulli(self.hot_fraction) {
                    self.hot_utilization
                } else {
                    self.cool_utilization
                };
                OwnerWorkload::continuous_exponential(self.owner_think, util)
                    .map_err(SimError::Cluster)
            })
            .collect()
    }

    /// Materialize the day as a [`TraceWorkload`] (e.g. to serialize a
    /// fixture with [`TraceWorkload::to_csv_string`]).
    pub fn to_trace(&self, seed: u64, replication: u64) -> Result<TraceWorkload, SimError> {
        TraceWorkload::new(self.generate(seed, replication)?)
    }

    fn sampler(&self, seed: u64, replication: u64) -> Result<SyntheticSampler, SimError> {
        self.validate()?;
        Ok(SyntheticSampler {
            rng: StreamFactory::new(seed).labeled_stream(TRACE_STREAM, replication),
            t: 0.0,
            remaining: self.jobs,
            day: self.day,
            base: self.base_rate,
            amp: self.amplitude,
            lambda_max: self.base_rate * (1.0 + self.amplitude),
            sizes: BoundedPareto::new(self.alpha, self.min_demand, self.max_demand)
                .map_err(SimError::Stats)?,
            max_tasks: self.max_tasks,
        })
    }
}

impl Workload for SyntheticTrace {
    fn generate(&self, seed: u64, replication: u64) -> Result<Vec<JobSpec>, SimError> {
        let mut sampler = self.sampler(seed, replication)?;
        let mut jobs = Vec::with_capacity(self.jobs);
        while let Some(spec) = sampler.next_spec() {
            jobs.push(spec);
        }
        Ok(jobs)
    }

    fn warmup_jobs(&self) -> usize {
        self.warmup.unwrap_or(self.jobs / 10)
    }

    fn is_open(&self) -> bool {
        true
    }

    fn label(&self) -> String {
        format!(
            "synthetic-trace({} machines, {} jobs, day {}, λ₀ {:.4}, A {})",
            self.machines, self.jobs, self.day, self.base_rate, self.amplitude
        )
    }

    fn validate(&self) -> Result<(), SimError> {
        let invalid = |field, reason: String| Err(SimError::InvalidWorkload { field, reason });
        if self.machines == 0 {
            return invalid("machines", "cluster needs at least one machine".into());
        }
        if self.jobs == 0 {
            return invalid("jobs", "trace needs at least one job".into());
        }
        if !(self.day.is_finite() && self.day > 0.0) {
            return invalid("day", format!("{} not finite > 0", self.day));
        }
        if !(self.base_rate.is_finite() && self.base_rate > 0.0) {
            return invalid("base_rate", format!("{} not finite > 0", self.base_rate));
        }
        if !(self.amplitude.is_finite() && (0.0..1.0).contains(&self.amplitude)) {
            return invalid(
                "amplitude",
                format!("{} must be in [0, 1) to keep λ(t) > 0", self.amplitude),
            );
        }
        BoundedPareto::new(self.alpha, self.min_demand, self.max_demand)
            .map_err(SimError::Stats)?;
        if self.max_tasks == 0 {
            return invalid("max_tasks", "jobs need at least one task".into());
        }
        if !(self.hot_fraction.is_finite() && (0.0..=1.0).contains(&self.hot_fraction)) {
            return invalid(
                "hot_fraction",
                format!("{} must be in [0, 1]", self.hot_fraction),
            );
        }
        for (field, u) in [
            ("hot_utilization", self.hot_utilization),
            ("cool_utilization", self.cool_utilization),
        ] {
            if !(u.is_finite() && (0.0..1.0).contains(&u)) {
                return invalid(field, format!("{u} must be in [0, 1)"));
            }
        }
        if !(self.owner_think.is_finite() && self.owner_think > 0.0) {
            return invalid(
                "owner_think",
                format!("{} not finite > 0", self.owner_think),
            );
        }
        if self.warmup_jobs() >= self.jobs {
            return invalid(
                "warmup",
                format!(
                    "warm-up {} must leave observed jobs (window is {})",
                    self.warmup_jobs(),
                    self.jobs
                ),
            );
        }
        Ok(())
    }

    fn feed(&self, seed: u64, replication: u64) -> Result<Box<dyn JobFeed + '_>, SimError> {
        Ok(Box::new(self.sampler(seed, replication)?)) // ndslint::allow(no-alloc-in-hot-path, reason = "one boxed sampler per replication is setup, not steady state")
    }
}

/// The lazily drawn synthetic job stream. [`SyntheticTrace::generate`]
/// drains this same sampler, so the streamed and materialized job
/// lists are identical by construction.
#[derive(Debug)]
struct SyntheticSampler {
    rng: Xoshiro256StarStar,
    t: f64,
    remaining: usize,
    day: f64,
    base: f64,
    amp: f64,
    lambda_max: f64,
    sizes: BoundedPareto,
    max_tasks: u32,
}

impl SyntheticSampler {
    fn next_spec(&mut self) -> Option<JobSpec> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        // Thinning (Lewis & Shedler): candidate gaps at the envelope
        // rate λ_max, accepted with probability λ(t)/λ_max — an exact
        // sampler for the nonhomogeneous process, no time grid.
        loop {
            self.t += -self.rng.next_f64_open().ln() / self.lambda_max;
            let lambda = self.base * (1.0 + self.amp * (TAU * self.t / self.day).sin());
            if self.rng.next_f64() * self.lambda_max <= lambda {
                break;
            }
        }
        // next_f64 < 1 keeps the width in 1..=max_tasks.
        let tasks = 1 + (self.rng.next_f64() * f64::from(self.max_tasks)) as u32;
        let task_demand = self.sizes.sample(&mut self.rng);
        Some(JobSpec {
            tasks,
            task_demand,
            arrival: self.t,
        })
    }
}

impl JobFeed for SyntheticSampler {
    fn next_chunk(&mut self, max: usize, buf: &mut Vec<JobSpec>) -> Result<usize, SchedError> {
        let mut n = 0;
        while n < max {
            match self.next_spec() {
                Some(spec) => {
                    buf.push(spec);
                    n += 1;
                }
                None => break,
            }
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CSV: &str = "\
# a tiny fixture
arrival,tasks,task_demand,owner_class
0,4,120.5,batch
3.25,1,30,interactive
3.25,2,55.125,batch
10,8,1000,batch
";

    #[test]
    fn csv_parses_and_round_trips() {
        let t = TraceWorkload::from_csv_str(CSV).unwrap();
        assert_eq!(t.jobs().len(), 4);
        assert_eq!(t.jobs()[0].tasks, 4);
        assert_eq!(t.jobs()[2].task_demand, 55.125);
        assert_eq!(
            t.owner_classes().unwrap(),
            ["batch", "interactive", "batch", "batch"]
        );
        let reparsed = TraceWorkload::from_csv_str(&t.to_csv_string()).unwrap();
        assert_eq!(reparsed, t, "CSV round-trip is exact");
        // And through JSONL.
        let reparsed = TraceWorkload::from_jsonl_str(&t.to_jsonl_string()).unwrap();
        assert_eq!(reparsed, t, "JSONL round-trip is exact");
    }

    #[test]
    fn csv_without_header_or_classes() {
        let t = TraceWorkload::from_csv_str("0,1,10\n5,2,20\n").unwrap();
        assert_eq!(t.jobs().len(), 2);
        assert!(t.owner_classes().is_none());
        let again = TraceWorkload::from_csv_str(&t.to_csv_string()).unwrap();
        assert_eq!(again, t);
    }

    #[test]
    fn ties_keep_input_order_deterministically() {
        let t = TraceWorkload::from_csv_str("5,1,10\n5,2,20\n5,3,30\n").unwrap();
        let jobs = t.generate(1, 0).unwrap();
        assert_eq!(
            jobs.iter().map(|j| j.tasks).collect::<Vec<_>>(),
            [1, 2, 3],
            "equal arrivals keep input order"
        );
        assert_eq!(
            t.generate(9, 4).unwrap(),
            jobs,
            "replay is seed-independent"
        );
    }

    #[test]
    fn malformed_rows_are_typed_errors_with_line_numbers() {
        let reject = |text: &str, needle: &str| {
            let err = TraceWorkload::from_csv_str(text).unwrap_err();
            let SimError::InvalidWorkload {
                field: "trace",
                reason,
            } = &err
            else {
                panic!("unexpected error {err:?} for {text:?}");
            };
            assert!(reason.contains(needle), "{reason:?} missing {needle:?}");
        };
        reject("10,1,10\n5,1,10\n", "line 2");
        reject("0,0,10\n", "zero tasks");
        reject("0,1,NaN\n", "not finite");
        reject("0,1,-3\n", "not finite");
        reject("NaN,1,10\n", "not finite");
        reject("0,1\n", "fields");
        reject("0,1,10,batch\n1,1,10\n", "fields");
        reject("0,x,10\n", "tasks");
        reject("arrival,tasks,demand\n", "header");
        reject("", "no jobs");
        let err =
            TraceWorkload::from_jsonl_str("{\"arrival\": 0, \"tasks\": 1.5, \"task_demand\": 3}\n")
                .unwrap_err();
        assert!(matches!(
            err,
            SimError::InvalidWorkload { field: "trace", .. }
        ));
        assert!(TraceWorkload::from_jsonl_str("{\"arrival\": 0, \"tasks\": 1}\n").is_err());
        assert!(TraceWorkload::from_jsonl_str("{\"bogus\": 1}\n").is_err());
        assert!(TraceWorkload::from_jsonl_str("not json\n").is_err());
    }

    #[test]
    fn trace_feed_streams_the_same_jobs() {
        let t = TraceWorkload::from_csv_str(CSV).unwrap().warmup(0);
        let want = t.generate(0, 0).unwrap();
        let mut feed = t.feed(0, 0).unwrap();
        let mut got = Vec::new();
        while feed.next_chunk(2, &mut got).unwrap() > 0 {}
        assert_eq!(got, want);
    }

    /// Hand-rolled property test: random well-formed traces round-trip
    /// through both serializers bit-for-bit.
    #[test]
    fn random_traces_round_trip() {
        let mut rng = Xoshiro256StarStar::new(0xABCD);
        for case in 0..50 {
            let n = 1 + (rng.next_f64() * 20.0) as usize;
            let with_classes = rng.bernoulli(0.5);
            let mut t = 0.0;
            let mut jobs = Vec::new();
            let mut classes = Vec::new();
            for _ in 0..n {
                // Ties with probability ~1/4 exercise the tie-break.
                if !rng.bernoulli(0.25) {
                    t += -rng.next_f64_open().ln() * 7.5;
                }
                jobs.push(JobSpec {
                    tasks: 1 + (rng.next_f64() * 32.0) as u32,
                    task_demand: rng.next_f64_open() * 1e4,
                    arrival: t,
                });
                classes.push(if rng.bernoulli(0.5) { "hot" } else { "cool" }.to_string());
            }
            let trace = if with_classes {
                TraceWorkload::with_classes(jobs, classes).unwrap()
            } else {
                TraceWorkload::new(jobs).unwrap()
            };
            let via_csv = TraceWorkload::from_csv_str(&trace.to_csv_string()).unwrap();
            assert_eq!(via_csv, trace, "case {case}: CSV round-trip");
            let via_jsonl = TraceWorkload::from_jsonl_str(&trace.to_jsonl_string()).unwrap();
            assert_eq!(via_jsonl, trace, "case {case}: JSONL round-trip");
        }
    }

    #[test]
    fn synthetic_trace_is_deterministic_and_well_formed() {
        let gen = SyntheticTrace::datacenter(100, 2_000);
        gen.validate().unwrap();
        let a = gen.generate(7, 0).unwrap();
        let b = gen.generate(7, 0).unwrap();
        assert_eq!(a, b, "same (seed, replication) must replay");
        assert_ne!(a, gen.generate(7, 1).unwrap(), "replications diverge");
        assert_ne!(a, gen.generate(8, 0).unwrap(), "seeds diverge");
        assert_eq!(a.len(), 2_000);
        let mut prev = 0.0;
        for j in &a {
            assert!(j.arrival >= prev, "arrivals are sorted");
            prev = j.arrival;
            assert!((1..=64).contains(&j.tasks));
            assert!((30.0..30_000.0).contains(&j.task_demand));
        }
        // The window spans roughly the configured day.
        let span = a.last().unwrap().arrival;
        assert!(
            span > 0.5 * 86_400.0 && span < 2.0 * 86_400.0,
            "span {span}"
        );
    }

    #[test]
    fn synthetic_feed_matches_generate_chunk_by_chunk() {
        let gen = SyntheticTrace::datacenter(50, 500);
        let want = gen.generate(11, 2).unwrap();
        for chunk in [1usize, 64, 10_000] {
            let mut feed = gen.feed(11, 2).unwrap();
            let mut got = Vec::new();
            while feed.next_chunk(chunk, &mut got).unwrap() > 0 {}
            assert_eq!(got, want, "chunk {chunk}");
        }
    }

    #[test]
    fn synthetic_diurnal_rate_actually_modulates() {
        // With a strong amplitude, arrivals in the sinusoid's peak
        // half-day outnumber the trough half-day decisively.
        let gen = SyntheticTrace::datacenter(100, 20_000).amplitude(0.9);
        let jobs = gen.generate(3, 0).unwrap();
        let day = 86_400.0;
        let (mut peak, mut trough) = (0usize, 0usize);
        for j in &jobs {
            let phase = (j.arrival / day).fract();
            if phase < 0.5 {
                peak += 1; // sin > 0 on the first half-period
            } else {
                trough += 1;
            }
        }
        assert!(
            peak as f64 > 1.5 * trough as f64,
            "peak {peak} vs trough {trough}: diurnal modulation missing"
        );
    }

    #[test]
    fn synthetic_owners_split_hot_and_cool() {
        let gen = SyntheticTrace::datacenter(400, 1_000).owner_mix(0.25, 0.4, 0.05);
        let owners = gen.owners(5, 0).unwrap();
        assert_eq!(owners.len(), 400);
        let replay: Vec<f64> = gen
            .owners(5, 0)
            .unwrap()
            .iter()
            .map(OwnerWorkload::utilization)
            .collect();
        let utils: Vec<f64> = owners.iter().map(OwnerWorkload::utilization).collect();
        assert_eq!(utils, replay, "assignment replays");
        let hot = owners
            .iter()
            .filter(|o| (o.utilization() - 0.4).abs() < 1e-12)
            .count();
        assert!(
            (40..=160).contains(&hot),
            "hot count {hot} far from 25% of 400"
        );
    }

    #[test]
    fn synthetic_rejects_bad_parameters() {
        let base = SyntheticTrace::datacenter(10, 100);
        assert!(SyntheticTrace::datacenter(0, 100).validate().is_err());
        assert!(SyntheticTrace::datacenter(10, 0).validate().is_err());
        assert!(base.amplitude(1.0).validate().is_err());
        assert!(base.amplitude(-0.1).validate().is_err());
        assert!(base.base_rate(0.0).validate().is_err());
        assert!(base.demands(0.0, 1.0, 10.0).validate().is_err());
        assert!(base.demands(1.5, 10.0, 1.0).validate().is_err());
        assert!(base.max_tasks(0).validate().is_err());
        assert!(base.owner_mix(1.5, 0.3, 0.05).validate().is_err());
        assert!(base.owner_mix(0.3, 1.0, 0.05).validate().is_err());
        assert!(base.owner_think(0.0).validate().is_err());
        assert!(base.warmup(100).validate().is_err());
        assert!(base.validate().is_ok());
    }

    #[test]
    fn to_trace_round_trips_through_csv() {
        let gen = SyntheticTrace::datacenter(20, 200);
        let trace = gen.to_trace(9, 1).unwrap();
        assert_eq!(trace.jobs(), gen.generate(9, 1).unwrap().as_slice());
        let reparsed = TraceWorkload::from_csv_str(&trace.to_csv_string()).unwrap();
        assert_eq!(reparsed, trace, "shortest-repr floats survive the trip");
    }
}
