//! Workload descriptions for the [`Sim`](crate::sim::Sim) builder.
//!
//! The paper studies a **closed** system: a fixed set of jobs is
//! submitted, the experiment ends when the last one completes, and the
//! headline number is the makespan. Its §5 future work ("more complex
//! workloads") points at **open** systems: jobs arrive forever under a
//! stochastic process and the steady-state response time is what
//! matters. The [`Workload`] trait covers both:
//!
//! * [`ClosedJobs`] — an explicit job list, today's model (helpers:
//!   [`closed`], [`single_job`]);
//! * [`OpenArrivals`] — a finite window of an arrival stream drawn from
//!   an [`ArrivalProcess`] (helpers: [`poisson`], [`periodic`]), with a
//!   warm-up prefix excluded from steady-state statistics.
//!
//! Open workloads pre-sample their arrival instants: arrivals are
//! independent of system state, so materializing them up front keeps
//! the scheduler engine unchanged while the analysis layer gains the
//! paper's batch-means machinery over per-job response times.

use crate::sim::error::SimError;
use nds_sched::feed::{JobFeed, VecFeed};
use nds_sched::JobSpec;
use nds_stats::distributions::{Distribution, Exponential};
use nds_stats::rng::{StreamFactory, Xoshiro256StarStar};
use std::fmt;

/// Stream label for arrival-time sampling (kept separate from the
/// owner/placement streams so changing the workload never perturbs the
/// owners' sample paths).
const ARRIVAL_STREAM: &str = "sim-arrivals";

/// How experiment jobs are submitted to the pool.
///
/// Implementations are *descriptions*: `generate` materializes the
/// concrete job list for one `(seed, replication)` pair, so replaying a
/// configuration reproduces the identical workload. Descriptions are
/// plain data (`Send + Sync`), which lets the builder shard
/// replications across [`crate::sweep`]'s scoped threads.
pub trait Workload: fmt::Debug + Send + Sync {
    /// Materialize the job list for one replication, in submission
    /// order.
    fn generate(&self, seed: u64, replication: u64) -> Result<Vec<JobSpec>, SimError>;

    /// Number of leading jobs discarded as warm-up when forming
    /// steady-state statistics (0 for closed workloads).
    fn warmup_jobs(&self) -> usize {
        0
    }

    /// Whether this is an open system: jobs keep arriving and the
    /// report carries steady-state response-time statistics.
    fn is_open(&self) -> bool {
        false
    }

    /// Human-readable description for tables and reports.
    fn label(&self) -> String;

    /// Check every parameter, returning a typed error (never panic).
    fn validate(&self) -> Result<(), SimError>;

    /// A streaming source of this replication's jobs: the same specs as
    /// [`Workload::generate`], in the same order, delivered in bounded
    /// chunks for [`SchedConfig::run_streamed`](nds_sched::SchedConfig).
    /// The default materializes `generate` and replays it (correct for
    /// every workload, saves nothing); workloads that can sample lazily
    /// override this so peak memory tracks the chunk size, not the
    /// trace length.
    fn feed(&self, seed: u64, replication: u64) -> Result<Box<dyn JobFeed + '_>, SimError> {
        Ok(Box::new(VecFeed::new(self.generate(seed, replication)?)))
    }
}

/// Validate one [`JobSpec`], shared by every workload implementation.
fn validate_spec(i: usize, spec: &JobSpec) -> Result<(), SimError> {
    if spec.tasks == 0 {
        return Err(SimError::InvalidWorkload {
            field: "jobs",
            reason: format!("job {i} has zero tasks"),
        });
    }
    if !(spec.task_demand.is_finite() && spec.task_demand > 0.0) {
        return Err(SimError::InvalidWorkload {
            field: "jobs",
            reason: format!("job {i} task_demand {} not finite > 0", spec.task_demand),
        });
    }
    if !(spec.arrival.is_finite() && spec.arrival >= 0.0) {
        return Err(SimError::InvalidWorkload {
            field: "jobs",
            reason: format!("job {i} arrival {} not finite >= 0", spec.arrival),
        });
    }
    Ok(())
}

/// The shape shared by every job of an open stream: `tasks` independent
/// tasks of `task_demand` CPU units each.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobShape {
    /// Tasks per job.
    pub tasks: u32,
    /// CPU demand per task.
    pub task_demand: f64,
}

impl JobShape {
    /// A job of `tasks` tasks, `task_demand` CPU units each.
    pub fn new(tasks: u32, task_demand: f64) -> Self {
        Self { tasks, task_demand }
    }

    /// Total CPU demand of one job.
    pub fn total_demand(&self) -> f64 {
        f64::from(self.tasks) * self.task_demand
    }
}

/// A closed workload: an explicit, finite job list (the paper's model
/// and every PR-1 experiment).
#[derive(Debug, Clone)]
pub struct ClosedJobs {
    jobs: Vec<JobSpec>,
}

impl ClosedJobs {
    /// Wrap an explicit job list.
    pub fn new(jobs: Vec<JobSpec>) -> Self {
        Self { jobs }
    }

    /// The job list.
    pub fn jobs(&self) -> &[JobSpec] {
        &self.jobs
    }
}

impl Workload for ClosedJobs {
    fn generate(&self, _seed: u64, _replication: u64) -> Result<Vec<JobSpec>, SimError> {
        Ok(self.jobs.clone())
    }

    fn label(&self) -> String {
        let total: f64 = self.jobs.iter().map(JobSpec::total_demand).sum();
        format!("closed({} jobs, total demand {total})", self.jobs.len())
    }

    fn validate(&self) -> Result<(), SimError> {
        if self.jobs.is_empty() {
            return Err(SimError::InvalidWorkload {
                field: "jobs",
                reason: "closed workload needs at least one job".into(),
            });
        }
        for (i, spec) in self.jobs.iter().enumerate() {
            validate_spec(i, spec)?;
        }
        Ok(())
    }
}

/// An explicit closed job list (today's model).
pub fn closed(jobs: Vec<JobSpec>) -> ClosedJobs {
    ClosedJobs::new(jobs)
}

/// The paper's workload: one job at time zero, `tasks` tasks of
/// `task_demand` each. With one task per station and suspend-resume
/// eviction this degenerates to the original `JobRunner` model.
pub fn single_job(tasks: u32, task_demand: f64) -> ClosedJobs {
    ClosedJobs::new(vec![JobSpec::at_zero(tasks, task_demand)])
}

/// A stationary stream of job inter-arrival times.
pub trait ArrivalProcess: fmt::Debug + Send + Sync {
    /// Draw the next inter-arrival gap.
    fn sample_interarrival(&self, rng: &mut nds_stats::rng::Xoshiro256StarStar) -> f64;

    /// Long-run arrival rate (jobs per time unit).
    fn rate(&self) -> f64;

    /// Human-readable description.
    fn label(&self) -> String;

    /// Check the process parameters (typed error, never panic).
    fn validate(&self) -> Result<(), SimError>;
}

/// Poisson arrivals: exponential inter-arrival times at `rate` jobs per
/// time unit — the open-system counterpart of the paper's exponential
/// owner model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonArrivals {
    /// Arrival rate λ (jobs per time unit).
    rate: f64,
    /// Cached sampler, built once at construction. `None` exactly when
    /// the rate is invalid — [`ArrivalProcess::validate`] reports that
    /// as a typed error before any sampling can happen.
    dist: Option<Exponential>,
}

impl PoissonArrivals {
    /// Poisson arrivals at `rate` jobs per time unit. An invalid rate
    /// is kept (so `validate()` can report it); only sampling requires
    /// a valid one.
    pub fn new(rate: f64) -> Self {
        Self {
            rate,
            dist: Exponential::new(rate).ok(),
        }
    }
}

impl ArrivalProcess for PoissonArrivals {
    fn sample_interarrival(&self, rng: &mut nds_stats::rng::Xoshiro256StarStar) -> f64 {
        self.dist
            .as_ref()
            .expect("invariant: validate() accepted the rate, so the cached Exponential exists")
            .sample(rng)
    }

    fn rate(&self) -> f64 {
        self.rate
    }

    fn label(&self) -> String {
        format!("poisson(λ={})", self.rate)
    }

    fn validate(&self) -> Result<(), SimError> {
        if !(self.rate.is_finite() && self.rate > 0.0) {
            return Err(SimError::InvalidWorkload {
                field: "rate",
                reason: format!("{} not finite > 0", self.rate),
            });
        }
        Ok(())
    }
}

/// Deterministic arrivals every `period` time units — a variance-free
/// baseline for comparing against [`PoissonArrivals`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeriodicArrivals {
    /// Gap between consecutive arrivals.
    pub period: f64,
}

impl ArrivalProcess for PeriodicArrivals {
    fn sample_interarrival(&self, _rng: &mut nds_stats::rng::Xoshiro256StarStar) -> f64 {
        self.period
    }

    fn rate(&self) -> f64 {
        1.0 / self.period
    }

    fn label(&self) -> String {
        format!("periodic(gap={})", self.period)
    }

    fn validate(&self) -> Result<(), SimError> {
        if !(self.period.is_finite() && self.period > 0.0) {
            return Err(SimError::InvalidWorkload {
                field: "period",
                reason: format!("{} not finite > 0", self.period),
            });
        }
        Ok(())
    }
}

/// Default number of observed jobs in an open window.
pub const DEFAULT_OPEN_JOBS: usize = 1_000;

/// An open workload: a finite observation window of `jobs` arrivals
/// drawn from an [`ArrivalProcess`], every job sharing one [`JobShape`].
///
/// The first [`warmup`](OpenArrivals::warmup) jobs are still simulated
/// but excluded from steady-state response statistics (initial-transient
/// deletion), so the batch-means interval estimates the stationary mean.
/// Unless set explicitly, the warm-up tracks the window at 10%.
#[derive(Debug)]
pub struct OpenArrivals {
    process: Box<dyn ArrivalProcess>,
    shape: JobShape,
    jobs: usize,
    /// `None` = the 10% default, rescaled with the window.
    warmup: Option<usize>,
}

impl OpenArrivals {
    /// An open stream of `DEFAULT_OPEN_JOBS` jobs (10% warm-up) from
    /// the given process and shape.
    pub fn new(process: impl ArrivalProcess + 'static, shape: JobShape) -> Self {
        Self {
            process: Box::new(process),
            shape,
            jobs: DEFAULT_OPEN_JOBS,
            warmup: None,
        }
    }

    /// Set the number of observed jobs (warm-up included). A default
    /// warm-up rescales to 10% of the new window; an explicit
    /// [`warmup`](OpenArrivals::warmup) is kept as given.
    #[must_use]
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Set the number of leading jobs excluded from steady-state
    /// statistics (overrides the 10%-of-window default).
    #[must_use]
    pub fn warmup(mut self, warmup: usize) -> Self {
        self.warmup = Some(warmup);
        self
    }

    /// The underlying arrival process.
    pub fn process(&self) -> &dyn ArrivalProcess {
        self.process.as_ref()
    }

    /// The per-job shape.
    pub fn shape(&self) -> JobShape {
        self.shape
    }
}

impl Workload for OpenArrivals {
    fn generate(&self, seed: u64, replication: u64) -> Result<Vec<JobSpec>, SimError> {
        self.validate()?;
        let mut rng = StreamFactory::new(seed).labeled_stream(ARRIVAL_STREAM, replication);
        let mut t = 0.0;
        Ok((0..self.jobs)
            .map(|_| {
                t += self.process.sample_interarrival(&mut rng);
                JobSpec {
                    tasks: self.shape.tasks,
                    task_demand: self.shape.task_demand,
                    arrival: t,
                }
            })
            .collect())
    }

    fn warmup_jobs(&self) -> usize {
        self.warmup.unwrap_or(self.jobs / 10)
    }

    fn is_open(&self) -> bool {
        true
    }

    fn label(&self) -> String {
        format!(
            "open({}, {} tasks x {}, {} jobs, {} warm-up)",
            self.process.label(),
            self.shape.tasks,
            self.shape.task_demand,
            self.jobs,
            self.warmup_jobs()
        )
    }

    fn validate(&self) -> Result<(), SimError> {
        self.process.validate()?;
        validate_spec(
            0,
            &JobSpec {
                tasks: self.shape.tasks,
                task_demand: self.shape.task_demand,
                arrival: 0.0,
            },
        )?;
        if self.jobs == 0 {
            return Err(SimError::InvalidWorkload {
                field: "jobs",
                reason: "open window needs at least one job".into(),
            });
        }
        if self.warmup_jobs() >= self.jobs {
            return Err(SimError::InvalidWorkload {
                field: "warmup",
                reason: format!(
                    "warm-up {} must leave observed jobs (window is {})",
                    self.warmup_jobs(),
                    self.jobs
                ),
            });
        }
        Ok(())
    }

    fn feed(&self, seed: u64, replication: u64) -> Result<Box<dyn JobFeed + '_>, SimError> {
        self.validate()?;
        Ok(Box::new(OpenFeed {
            process: self.process.as_ref(),
            shape: self.shape,
            remaining: self.jobs,
            t: 0.0,
            rng: StreamFactory::new(seed).labeled_stream(ARRIVAL_STREAM, replication),
        }))
    }
}

/// The streaming counterpart of [`OpenArrivals::generate`]: the same
/// RNG stream, the same running clock, drawn lazily — so the chunks
/// concatenate to `generate`'s job list exactly, while only one chunk
/// is ever resident.
#[derive(Debug)]
struct OpenFeed<'a> {
    process: &'a dyn ArrivalProcess,
    shape: JobShape,
    remaining: usize,
    t: f64,
    rng: Xoshiro256StarStar,
}

impl JobFeed for OpenFeed<'_> {
    fn next_chunk(
        &mut self,
        max: usize,
        buf: &mut Vec<JobSpec>,
    ) -> Result<usize, nds_sched::SchedError> {
        let n = max.min(self.remaining);
        for _ in 0..n {
            self.t += self.process.sample_interarrival(&mut self.rng);
            buf.push(JobSpec {
                tasks: self.shape.tasks,
                task_demand: self.shape.task_demand,
                arrival: self.t,
            });
        }
        self.remaining -= n;
        Ok(n)
    }
}

/// A Poisson job stream: `rate` jobs per time unit, each of the given
/// shape. The ISSUE's `poisson(λ, job_spec)` helper.
pub fn poisson(rate: f64, shape: JobShape) -> OpenArrivals {
    OpenArrivals::new(PoissonArrivals::new(rate), shape)
}

/// A deterministic job stream with the given inter-arrival gap.
pub fn periodic(period: f64, shape: JobShape) -> OpenArrivals {
    OpenArrivals::new(PeriodicArrivals { period }, shape)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_jobs_validate_and_replay() {
        let w = closed(vec![JobSpec::at_zero(4, 50.0), JobSpec::at_zero(2, 25.0)]);
        w.validate().unwrap();
        assert!(!w.is_open());
        assert_eq!(w.warmup_jobs(), 0);
        let a = w.generate(1, 0).unwrap();
        let b = w.generate(9, 7).unwrap();
        assert_eq!(a, b, "closed workloads ignore seed/replication");
        assert_eq!(a.len(), 2);
        assert!(w.label().contains("2 jobs"));
    }

    #[test]
    fn closed_rejects_bad_specs() {
        assert!(matches!(
            closed(vec![]).validate(),
            Err(SimError::InvalidWorkload { field: "jobs", .. })
        ));
        assert!(closed(vec![JobSpec::at_zero(0, 50.0)]).validate().is_err());
        assert!(closed(vec![JobSpec::at_zero(4, -1.0)]).validate().is_err());
        assert!(closed(vec![JobSpec {
            tasks: 4,
            task_demand: 10.0,
            arrival: f64::NAN,
        }])
        .validate()
        .is_err());
    }

    #[test]
    fn single_job_is_the_papers_workload() {
        let w = single_job(8, 100.0);
        let jobs = w.generate(0, 0).unwrap();
        assert_eq!(jobs, vec![JobSpec::at_zero(8, 100.0)]);
    }

    #[test]
    fn poisson_stream_is_reproducible_and_ordered() {
        let w = poisson(0.05, JobShape::new(4, 60.0)).jobs(200).warmup(20);
        w.validate().unwrap();
        assert!(w.is_open());
        assert_eq!(w.warmup_jobs(), 20);
        let a = w.generate(42, 0).unwrap();
        let b = w.generate(42, 0).unwrap();
        assert_eq!(a, b, "same (seed, replication) must replay");
        let c = w.generate(42, 1).unwrap();
        assert_ne!(a, c, "replications must diverge");
        assert_eq!(a.len(), 200);
        let mut prev = 0.0;
        for j in &a {
            assert!(j.arrival > prev, "arrivals strictly increase");
            prev = j.arrival;
        }
        // Mean inter-arrival ~ 1/λ = 20 (loose bound over 200 draws).
        let mean_gap = a.last().unwrap().arrival / a.len() as f64;
        assert!((mean_gap - 20.0).abs() < 5.0, "mean gap {mean_gap}");
    }

    #[test]
    fn periodic_stream_has_fixed_gaps() {
        let w = periodic(30.0, JobShape::new(2, 10.0)).jobs(5).warmup(0);
        let jobs = w.generate(7, 3).unwrap();
        for (i, j) in jobs.iter().enumerate() {
            assert!((j.arrival - 30.0 * (i + 1) as f64).abs() < 1e-12);
        }
        assert!((w.process().rate() - 1.0 / 30.0).abs() < 1e-15);
    }

    #[test]
    fn open_rejects_bad_parameters() {
        for bad_rate in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let w = poisson(bad_rate, JobShape::new(4, 60.0));
            assert!(
                matches!(w.validate(), Err(SimError::InvalidWorkload { .. })),
                "rate {bad_rate} must be rejected"
            );
            assert!(w.generate(0, 0).is_err(), "generate validates too");
        }
        assert!(poisson(0.1, JobShape::new(0, 60.0)).validate().is_err());
        assert!(poisson(0.1, JobShape::new(4, 0.0)).validate().is_err());
        assert!(poisson(0.1, JobShape::new(4, 60.0))
            .jobs(0)
            .validate()
            .is_err());
        assert!(
            poisson(0.1, JobShape::new(4, 60.0))
                .jobs(10)
                .warmup(10)
                .validate()
                .is_err(),
            "warm-up must leave observed jobs"
        );
        assert!(periodic(f64::NAN, JobShape::new(1, 1.0))
            .validate()
            .is_err());
    }

    #[test]
    fn default_warmup_rescales_with_the_window() {
        let shape = JobShape::new(2, 20.0);
        assert_eq!(poisson(0.05, shape).warmup_jobs(), DEFAULT_OPEN_JOBS / 10);
        let w = poisson(0.05, shape).jobs(80);
        assert_eq!(w.warmup_jobs(), 8, "default warm-up tracks 10% of window");
        w.validate().unwrap();
        let w = poisson(0.05, shape).jobs(80).warmup(30);
        assert_eq!(w.warmup_jobs(), 30, "explicit warm-up is kept");
        // Order of calls must not matter for an explicit warm-up.
        let w = poisson(0.05, shape).warmup(30).jobs(80);
        assert_eq!(w.warmup_jobs(), 30);
        // Tiny windows get a zero default warm-up and stay valid.
        let w = poisson(0.05, shape).jobs(5);
        assert_eq!(w.warmup_jobs(), 0);
        w.validate().unwrap();
    }

    #[test]
    fn shape_total_demand() {
        assert_eq!(JobShape::new(4, 60.0).total_demand(), 240.0);
    }

    #[test]
    fn streaming_feed_concatenates_to_generate() {
        let w = poisson(0.05, JobShape::new(4, 60.0)).jobs(100).warmup(10);
        let want = w.generate(42, 3).unwrap();
        for chunk in [1usize, 7, 1000] {
            let mut feed = w.feed(42, 3).unwrap();
            let mut got = Vec::new();
            while feed.next_chunk(chunk, &mut got).unwrap() > 0 {}
            assert_eq!(got, want, "chunk {chunk} must replay generate()");
        }
        // The default (materializing) feed agrees too.
        let closed_w = closed(vec![JobSpec::at_zero(4, 50.0), JobSpec::at_zero(2, 25.0)]);
        let mut feed = closed_w.feed(0, 0).unwrap();
        let mut got = Vec::new();
        while feed.next_chunk(1, &mut got).unwrap() > 0 {}
        assert_eq!(got, closed_w.generate(0, 0).unwrap());
    }
}
