//! Error type for [`Sim`](crate::sim::Sim) construction and execution.

use nds_cluster::error::ClusterError;
use nds_sched::SchedError;
use nds_stats::error::StatsError;
use std::fmt;

/// Why a [`Sim`](crate::sim::Sim) could not be built or run.
///
/// Every invalid builder input maps to a typed variant — the builder
/// never panics on bad parameters (the workspace's property tests
/// enforce this).
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A pool-level field (workstations, owners, admission threshold,
    /// estimator horizon, ...) was out of range.
    InvalidPool {
        /// Which field was rejected.
        field: &'static str,
        /// Why it was rejected.
        reason: String,
    },
    /// A workload parameter (arrival rate, job shape, warm-up split,
    /// ...) was out of range.
    InvalidWorkload {
        /// Which field was rejected.
        field: &'static str,
        /// Why it was rejected.
        reason: String,
    },
    /// A policy parameter (eviction overheads, checkpoint interval)
    /// was out of range.
    InvalidPolicy {
        /// Which field was rejected.
        field: &'static str,
        /// Why it was rejected.
        reason: String,
    },
    /// The builder was run without a workload.
    MissingWorkload,
    /// The requested backend cannot execute the configured experiment
    /// (e.g. the closed-form cluster runner asked to serve an open
    /// arrival stream).
    UnsupportedBackend {
        /// Which backend was requested.
        backend: &'static str,
        /// Why it cannot serve this configuration.
        reason: String,
    },
    /// The scheduler engine rejected or aborted the lowered run.
    Sched(SchedError),
    /// The cluster substrate rejected the lowered run.
    Cluster(ClusterError),
    /// Steady-state statistics could not be formed (e.g. too few jobs
    /// survive warm-up deletion for the requested batch count).
    Stats(StatsError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidPool { field, reason } => {
                write!(f, "invalid pool configuration: {field}: {reason}")
            }
            Self::InvalidWorkload { field, reason } => {
                write!(f, "invalid workload: {field}: {reason}")
            }
            Self::InvalidPolicy { field, reason } => {
                write!(f, "invalid policy: {field}: {reason}")
            }
            Self::MissingWorkload => {
                write!(
                    f,
                    "no workload configured: call .workload(...) before .run()"
                )
            }
            Self::UnsupportedBackend { backend, reason } => {
                write!(f, "backend {backend} cannot run this experiment: {reason}")
            }
            Self::Sched(e) => write!(f, "scheduler engine: {e}"),
            Self::Cluster(e) => write!(f, "cluster substrate: {e}"),
            Self::Stats(e) => write!(f, "steady-state statistics: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Sched(e) => Some(e),
            Self::Cluster(e) => Some(e),
            Self::Stats(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SchedError> for SimError {
    fn from(e: SchedError) -> Self {
        // Config errors surface as typed policy/pool errors where the
        // builder could not catch them first; execution errors pass
        // through.
        Self::Sched(e)
    }
}

impl From<ClusterError> for SimError {
    fn from(e: ClusterError) -> Self {
        Self::Cluster(e)
    }
}

impl From<StatsError> for SimError {
    fn from(e: StatsError) -> Self {
        Self::Stats(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_field() {
        let e = SimError::InvalidWorkload {
            field: "rate",
            reason: "NaN not finite > 0".into(),
        };
        assert!(e.to_string().contains("rate"));
        let e = SimError::UnsupportedBackend {
            backend: "cluster",
            reason: "open arrivals".into(),
        };
        assert!(e.to_string().contains("cluster"));
        assert!(SimError::MissingWorkload.to_string().contains("workload"));
    }

    #[test]
    fn wrapped_errors_have_sources() {
        use std::error::Error;
        let e = SimError::Sched(SchedError::EventCapExceeded {
            max_events: 10,
            jobs_unfinished: 1,
        });
        assert!(e.source().is_some());
        let e = SimError::MissingWorkload;
        assert!(e.source().is_none());
    }
}
