//! # The unified experiment API
//!
//! One fluent builder for every experiment in the workspace, replacing
//! the per-shape config structs (`ClusterConfig`, `SchedConfig`, the
//! hard-coded `Scenario` parameters) with three composable pieces:
//!
//! * a [`Workload`] trait — **closed** job sets ([`closed`],
//!   [`single_job`]: today's model) and **open** arrival streams
//!   ([`poisson`], [`periodic`]: the paper's §5 "more complex
//!   workloads");
//! * the [`Sim`] builder — pool size, owner populations, placement /
//!   eviction / gang-scheduling / queue policies, seeds and
//!   replications (optionally sharded across scoped threads), lowered
//!   automatically to the cluster runner or the scheduler engine;
//! * a unified [`Report`] — engine metrics per replication plus
//!   per-job response-time statistics, with the paper's batch-means
//!   steady-state procedure for open systems.
//!
//! ```
//! use nds_core::sim::{poisson, JobShape, Sim};
//! use nds_cluster::owner::OwnerWorkload;
//!
//! let owner = OwnerWorkload::continuous_exponential(10.0, 0.05).unwrap();
//! let report = Sim::pool(8)
//!     .owners(owner)
//!     .workload(poisson(0.01, JobShape::new(2, 40.0)).jobs(60).warmup(10))
//!     .batches(5)
//!     .run()
//!     .unwrap();
//! let ss = report.steady_state.unwrap();
//! println!(
//!     "steady-state response: {:.1} ± {:.1}",
//!     ss.response.mean, ss.response.half_width
//! );
//! ```

pub mod builder;
pub mod error;
pub mod report;
pub mod trace;
pub mod workload;

pub use builder::{Backend, Flight, OwnerSpec, Sim, SimBuilder};
pub use error::SimError;
pub use report::{Report, ResponseStats, SteadyState};
pub use trace::{SyntheticTrace, TraceWorkload};
pub use workload::{
    closed, periodic, poisson, single_job, ArrivalProcess, ClosedJobs, JobShape, OpenArrivals,
    PeriodicArrivals, PoissonArrivals, Workload,
};
