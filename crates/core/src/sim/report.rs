//! The unified result type returned by [`Sim::run`](crate::sim::Sim).
//!
//! Closed experiments keep the paper's makespan/goodput view; open
//! experiments additionally get per-job response-time statistics with
//! the paper's §2.2 batch-means procedure (Student-t interval over
//! batch means, lag-1 autocorrelation diagnostic) applied to the
//! post-warm-up response sequence.

use crate::sim::error::SimError;
use nds_sched::{JobRecord, SchedMetrics};
use nds_stats::autocorr::{check_batch_independence, BatchDiagnostic};
use nds_stats::batch_means::{BatchMeans, BatchMeansReport};
use nds_stats::error::StatsError;

/// Plain summary of observed per-job response times (warm-up excluded).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResponseStats {
    /// Mean response time.
    pub mean: f64,
    /// Fastest observed job.
    pub min: f64,
    /// Slowest observed job.
    pub max: f64,
    /// Number of jobs observed (after warm-up deletion).
    pub jobs: usize,
}

impl ResponseStats {
    /// Summarize a response-time sequence (empty input yields zeros).
    pub fn from_responses(responses: &[f64]) -> Self {
        if responses.is_empty() {
            return Self {
                mean: 0.0,
                min: 0.0,
                max: 0.0,
                jobs: 0,
            };
        }
        Self {
            mean: responses.iter().sum::<f64>() / responses.len() as f64,
            min: responses.iter().copied().fold(f64::INFINITY, f64::min),
            max: responses.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            jobs: responses.len(),
        }
    }
}

/// Steady-state response-time estimate for an open workload: the
/// paper's batch-means confidence interval plus the Law & Kelton
/// batch-independence diagnostic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SteadyState {
    /// Batch-means interval on the mean response time.
    pub response: BatchMeansReport,
    /// Lag-1 autocorrelation check of the batch means.
    pub diagnostic: BatchDiagnostic,
    /// Warm-up jobs deleted before batching (per replication).
    pub warmup_dropped: usize,
}

impl SteadyState {
    /// Form the estimate from a post-warm-up response sequence split
    /// into `batches` equal batches.
    pub(crate) fn from_responses(
        responses: &[f64],
        batches: usize,
        confidence: f64,
        warmup_dropped: usize,
    ) -> Result<Self, SimError> {
        if batches < 2 {
            return Err(SimError::InvalidWorkload {
                field: "batches",
                reason: format!("{batches} batches cannot form an interval (need >= 2)"),
            });
        }
        let batch_size = responses.len() / batches;
        if batch_size == 0 {
            return Err(SimError::Stats(StatsError::InsufficientData {
                needed: batches,
                got: responses.len(),
            }));
        }
        let mut collector = BatchMeans::new(batch_size)?;
        // Trailing remainder (< one batch) is dropped, as in the paper's
        // fixed 20 x 1000 design.
        for &r in &responses[..batch_size * batches] {
            collector.push(r);
        }
        let response = collector.report(confidence)?;
        let diagnostic = check_batch_independence(collector.batch_means())?;
        Ok(Self {
            response,
            diagnostic,
            warmup_dropped,
        })
    }

    /// Form the estimate from per-replication post-warm-up response
    /// sequences, batching **within** each replication.
    ///
    /// Each replication is split into `batches` equal batches (its
    /// trailing remainder dropped), and the Student-t interval is taken
    /// over the pooled per-replication batch means — so no batch ever
    /// straddles a replication boundary and the interval has
    /// `reps x batches` degrees-of-freedom-plus-one batches. A single
    /// replication reduces exactly to [`SteadyState::from_responses`].
    pub(crate) fn from_replications(
        per_rep: &[Vec<f64>],
        batches: usize,
        confidence: f64,
        warmup_dropped: usize,
    ) -> Result<Self, SimError> {
        let [responses] = per_rep else {
            return Self::pooled_over_replications(per_rep, batches, confidence, warmup_dropped);
        };
        Self::from_responses(responses, batches, confidence, warmup_dropped)
    }

    fn pooled_over_replications(
        per_rep: &[Vec<f64>],
        batches: usize,
        confidence: f64,
        warmup_dropped: usize,
    ) -> Result<Self, SimError> {
        if batches < 2 {
            return Err(SimError::InvalidWorkload {
                field: "batches",
                reason: format!("{batches} batches cannot form an interval (need >= 2)"),
            });
        }
        if per_rep.is_empty() {
            return Err(SimError::Stats(StatsError::InsufficientData {
                needed: batches,
                got: 0,
            }));
        }
        let mut means = Vec::with_capacity(per_rep.len() * batches);
        let mut min_batch_size = usize::MAX;
        for responses in per_rep {
            let batch_size = responses.len() / batches;
            if batch_size == 0 {
                return Err(SimError::Stats(StatsError::InsufficientData {
                    needed: batches,
                    got: responses.len(),
                }));
            }
            min_batch_size = min_batch_size.min(batch_size);
            let mut collector = BatchMeans::new(batch_size)?;
            for &r in &responses[..batch_size * batches] {
                collector.push(r);
            }
            means.extend_from_slice(collector.batch_means());
        }
        // Each per-replication batch mean enters the pooled interval as
        // one observation (a size-1 batch); the report's `batch_size`
        // is patched to the underlying per-replication batch size so it
        // keeps describing raw-response counts.
        let mut pooled = BatchMeans::new(1)?;
        for &m in &means {
            pooled.push(m);
        }
        let mut response = pooled.report(confidence)?;
        response.batch_size = min_batch_size;
        let diagnostic = check_batch_independence(pooled.batch_means())?;
        Ok(Self {
            response,
            diagnostic,
            warmup_dropped,
        })
    }
}

/// Everything measured by one [`Sim::run`](crate::sim::Sim): one
/// engine-level [`SchedMetrics`] per replication plus the unified
/// response-time view.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Human-readable experiment description (pool + workload).
    pub label: String,
    /// Pool size.
    pub workstations: u32,
    /// Per-replication engine metrics, in replication order.
    pub runs: Vec<SchedMetrics>,
    /// Per-job response summary across all replications (open
    /// workloads: warm-up jobs excluded).
    pub response: ResponseStats,
    /// Steady-state batch-means estimate (open workloads only).
    pub steady_state: Option<SteadyState>,
}

impl Report {
    /// Number of replications run.
    pub fn replications(&self) -> usize {
        self.runs.len()
    }

    /// Mean of `f` over the replications.
    pub fn mean_over(&self, f: impl Fn(&SchedMetrics) -> f64) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        self.runs.iter().map(f).sum::<f64>() / self.runs.len() as f64
    }

    /// Mean makespan over replications.
    pub fn mean_makespan(&self) -> f64 {
        self.mean_over(|m| m.makespan)
    }

    /// Mean goodput fraction over replications.
    pub fn mean_goodput_fraction(&self) -> f64 {
        self.mean_over(SchedMetrics::goodput_fraction)
    }

    /// Mean wasted CPU over replications.
    pub fn mean_wasted(&self) -> f64 {
        self.mean_over(|m| m.wasted)
    }

    /// Mean evictions per replication.
    pub fn mean_evictions(&self) -> f64 {
        self.mean_over(|m| m.evictions as f64)
    }

    /// Mean central-queue wait per placement, over replications.
    pub fn mean_queue_wait(&self) -> f64 {
        self.mean_over(|m| m.mean_queue_wait)
    }

    /// Mean co-allocation wait per gang start, over replications
    /// (zero for runs without a gang policy).
    pub fn mean_coalloc_wait(&self) -> f64 {
        self.mean_over(|m| {
            if m.gang.gang_starts == 0 {
                0.0
            } else {
                m.gang.coalloc_wait / m.gang.gang_starts as f64
            }
        })
    }

    /// Mean barrier-stall time per replication (member-time frozen
    /// behind a reclaimed peer while the member's machine was free).
    pub fn mean_barrier_stall(&self) -> f64 {
        self.mean_over(|m| m.gang.barrier_stall)
    }

    /// Mean gang fragmentation per replication (the time-integral of
    /// free machines no waiting gang could use).
    pub fn mean_fragmentation(&self) -> f64 {
        self.mean_over(|m| m.gang.fragmentation)
    }

    /// Mean degraded-mode time per replication: how long partial gangs
    /// computed below their full width (zero for all-or-nothing
    /// policies).
    pub fn mean_degraded_time(&self) -> f64 {
        self.mean_over(|m| m.gang.degraded_time)
    }

    /// Mean effective parallelism per replication: the
    /// effective-parallelism integral normalized by the makespan —
    /// running gang members averaged over the run's wall clock.
    pub fn mean_effective_parallelism(&self) -> f64 {
        self.mean_over(|m| {
            if m.makespan == 0.0 {
                0.0
            } else {
                m.gang.parallelism_integral / m.makespan
            }
        })
    }

    /// Whether work conservation held in every replication.
    pub fn is_consistent(&self) -> bool {
        self.runs.iter().all(SchedMetrics::is_consistent)
    }

    /// All per-job records across replications, in run order.
    pub fn job_records(&self) -> impl Iterator<Item = &JobRecord> {
        self.runs.iter().flat_map(|m| m.jobs.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(makespan: f64, responses: &[f64]) -> SchedMetrics {
        SchedMetrics {
            makespan,
            delivered: 100.0,
            goodput: 100.0,
            wasted: 0.0,
            checkpoint_overhead: 0.0,
            evictions: 2,
            suspensions: 2,
            restarts: 0,
            migrations: 0,
            completed_tasks: responses.len() as u64,
            total_demand: 100.0,
            placements: responses.len() as u64,
            mean_queue_wait: 1.0,
            mean_available_machines: 3.0,
            gang: nds_sched::GangStats::default(),
            jobs: responses
                .iter()
                .map(|&r| JobRecord {
                    arrival: 0.0,
                    completion: r,
                    demand: 10.0,
                })
                .collect(),
            crashes: 0,
            crash_lost: 0.0,
            downtime: 0.0,
            crashes_by_machine: Vec::new(),
        }
    }

    #[test]
    fn response_stats_summarize() {
        let s = ResponseStats::from_responses(&[10.0, 20.0, 30.0]);
        assert_eq!(s.mean, 20.0);
        assert_eq!(s.min, 10.0);
        assert_eq!(s.max, 30.0);
        assert_eq!(s.jobs, 3);
        let empty = ResponseStats::from_responses(&[]);
        assert_eq!(empty.jobs, 0);
        assert_eq!(empty.mean, 0.0);
    }

    #[test]
    fn steady_state_needs_enough_jobs() {
        let few = [1.0; 5];
        assert!(matches!(
            SteadyState::from_responses(&few, 10, 0.9, 0),
            Err(SimError::Stats(_))
        ));
        assert!(SteadyState::from_responses(&few, 1, 0.9, 0).is_err());
    }

    #[test]
    fn steady_state_interval_covers_constant_series() {
        let responses = [7.0; 100];
        let s = SteadyState::from_responses(&responses, 10, 0.9, 25).unwrap();
        assert!((s.response.mean - 7.0).abs() < 1e-12);
        assert!(s.response.half_width < 1e-12);
        assert_eq!(s.response.batches, 10);
        assert_eq!(s.warmup_dropped, 25);
        assert!(s.diagnostic.acceptable, "constant series is independent");
    }

    #[test]
    fn per_replication_batching_never_straddles_boundaries() {
        // Hand-computed two-rep fixture. Each rep has 5 observations and
        // batches = 2, so per-rep batch size is 2 and each rep's 5th
        // observation (a deliberate outlier) is remainder and dropped:
        //   rep A [1,2,3,4,(100)]   -> batch means [1.5, 3.5]
        //   rep B [10,20,30,40,(1000)] -> batch means [15, 35]
        // pooled mean = (1.5 + 3.5 + 15 + 35) / 4 = 13.75 over 4 batches.
        // The pre-fix code concatenated both reps into one sequence of
        // 10, making batch size 5: means [22, 220], estimate 121 — the
        // outliers leak in and a batch straddles the rep boundary.
        let per_rep = vec![
            vec![1.0, 2.0, 3.0, 4.0, 100.0],
            vec![10.0, 20.0, 30.0, 40.0, 1000.0],
        ];
        let s = SteadyState::from_replications(&per_rep, 2, 0.9, 3).unwrap();
        assert_eq!(s.response.mean, 13.75);
        assert_eq!(s.response.batches, 4, "reps x batches pooled batches");
        assert_eq!(s.response.batch_size, 2, "per-replication batch size");
        assert_eq!(s.warmup_dropped, 3);
    }

    #[test]
    fn single_replication_reduces_to_from_responses() {
        let responses: Vec<f64> = (0..100).map(|i| f64::from(i % 13)).collect();
        let direct = SteadyState::from_responses(&responses, 10, 0.9, 10).unwrap();
        let via_reps = SteadyState::from_replications(&[responses], 10, 0.9, 10).unwrap();
        assert_eq!(direct, via_reps);
    }

    #[test]
    fn per_replication_batching_rejects_starved_reps() {
        // Any single rep too short for one observation per batch is a
        // typed error, even if the other reps are long.
        let per_rep = vec![vec![1.0; 50], vec![1.0; 3]];
        assert!(matches!(
            SteadyState::from_replications(&per_rep, 10, 0.9, 0),
            Err(SimError::Stats(_))
        ));
        assert!(SteadyState::from_replications(&per_rep, 1, 0.9, 0).is_err());
        assert!(SteadyState::from_replications(&[], 10, 0.9, 0).is_err());
    }

    #[test]
    fn report_aggregates_over_replications() {
        let report = Report {
            label: "test".into(),
            workstations: 4,
            runs: vec![metrics(100.0, &[50.0, 60.0]), metrics(200.0, &[70.0, 80.0])],
            response: ResponseStats::from_responses(&[50.0, 60.0, 70.0, 80.0]),
            steady_state: None,
        };
        assert_eq!(report.replications(), 2);
        assert_eq!(report.mean_makespan(), 150.0);
        assert_eq!(report.response.mean, 65.0);
        assert_eq!(report.job_records().count(), 4);
        assert!(report.is_consistent());
        assert_eq!(report.mean_queue_wait(), 1.0);
    }
}
