//! Error type for the feasibility toolkit.

use std::fmt;

/// Errors surfaced by the high-level API (wrapping the lower crates).
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Missing or inconsistent builder inputs.
    Builder {
        /// Explanation.
        reason: String,
    },
    /// A model-layer error.
    Model(nds_model::ModelError),
    /// A cluster-simulation error.
    Cluster(nds_cluster::ClusterError),
    /// A PVM-layer error.
    Pvm(nds_pvm::PvmError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Builder { reason } => write!(f, "builder error: {reason}"),
            CoreError::Model(e) => write!(f, "model error: {e}"),
            CoreError::Cluster(e) => write!(f, "cluster error: {e}"),
            CoreError::Pvm(e) => write!(f, "pvm error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Builder { .. } => None,
            CoreError::Model(e) => Some(e),
            CoreError::Cluster(e) => Some(e),
            CoreError::Pvm(e) => Some(e),
        }
    }
}

impl From<nds_model::ModelError> for CoreError {
    fn from(e: nds_model::ModelError) -> Self {
        CoreError::Model(e)
    }
}

impl From<nds_cluster::ClusterError> for CoreError {
    fn from(e: nds_cluster::ClusterError) -> Self {
        CoreError::Cluster(e)
    }
}

impl From<nds_pvm::PvmError> for CoreError {
    fn from(e: nds_pvm::PvmError) -> Self {
        CoreError::Pvm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_and_sources() {
        let b = CoreError::Builder {
            reason: "missing W".into(),
        };
        assert!(b.to_string().contains("missing W"));
        assert!(b.source().is_none());

        let m: CoreError = nds_model::ModelError::NoSolution { what: "x" }.into();
        assert!(m.to_string().contains("model error"));
        assert!(m.source().is_some());

        let p: CoreError = nds_pvm::PvmError::UnknownTask { id: 1 }.into();
        assert!(p.to_string().contains("pvm error"));
    }
}
