//! Plain-text table rendering for figure regeneration.
//!
//! Every figure binary prints its series as an aligned table: an x
//! column plus one column per curve — the textual equivalent of the
//! paper's gnuplot figures, ready to paste into EXPERIMENTS.md.

use std::fmt::Write as _;

/// A simple column-aligned table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a title line.
    pub fn new(title: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            headers: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Set the column headers.
    pub fn headers<I, S>(mut self, headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.headers = headers.into_iter().map(Into::into).collect();
        self
    }

    /// Append a row of pre-rendered cells.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Append a row of numbers rendered with the given precision.
    pub fn numeric_row(&mut self, cells: &[f64], precision: usize) -> &mut Self {
        self.rows
            .push(cells.iter().map(|v| format!("{v:.precision$}")).collect());
        self
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "# {}", self.title);
        }
        if !self.headers.is_empty() {
            let line: Vec<String> = self
                .headers
                .iter()
                .enumerate()
                .map(|(i, h)| format!("{h:>width$}", width = widths[i]))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
            let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
            let _ = writeln!(out, "{}", rule.join("  "));
        }
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Figure X").headers(["W", "speedup"]);
        t.row(["1", "1.00"]);
        t.row(["100", "61.02"]);
        let s = t.render();
        assert!(s.starts_with("# Figure X\n"));
        let lines: Vec<&str> = s.lines().collect();
        // Title, header, rule, two rows.
        assert_eq!(lines.len(), 5);
        // Right-aligned columns: all data/header lines share a width.
        assert_eq!(lines[1].len(), lines[3].len());
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn numeric_rows_respect_precision() {
        let mut t = Table::new("t").headers(["a", "b"]);
        t.numeric_row(&[1.23456, 2.0], 2);
        let s = t.render();
        assert!(s.contains("1.23"));
        assert!(s.contains("2.00"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn empty_table_renders_title_only() {
        let t = Table::new("empty");
        assert_eq!(t.render(), "# empty\n");
        assert!(t.is_empty());
    }

    #[test]
    fn headerless_table() {
        let mut t = Table::new("");
        t.row(["x", "y"]);
        let s = t.render();
        assert_eq!(s, "x  y\n");
    }
}
