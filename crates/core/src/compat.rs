//! Deprecated shims for the pre-[`Sim`](crate::sim::Sim) configuration
//! structs.
//!
//! The underlying types remain the engines' internal configuration —
//! [`crate::sim::Sim`] lowers onto them — but constructing experiments
//! through them directly is deprecated. See `MIGRATION.md` at the
//! workspace root for the mechanical rewrite.

/// The scheduler engine's raw configuration.
#[deprecated(
    since = "0.1.0",
    note = "construct experiments through nds_core::sim::Sim; \
            see MIGRATION.md"
)]
pub type SchedConfig = nds_sched::SchedConfig;

/// The cluster crate's scenario configuration.
#[deprecated(
    since = "0.1.0",
    note = "construct experiments through nds_core::sim::Sim; \
            see MIGRATION.md"
)]
pub type ClusterConfig = nds_cluster::config::ClusterConfig;

/// The multi-job co-scheduling experiment's raw configuration.
#[deprecated(
    since = "0.1.0",
    note = "construct experiments through nds_core::sim::Sim; \
            see MIGRATION.md"
)]
pub type MultiJobExperiment = nds_cluster::multi::MultiJobExperiment;

#[cfg(test)]
mod tests {
    #[test]
    #[allow(deprecated)]
    fn shims_still_resolve() {
        use nds_cluster::owner::OwnerWorkload;
        use nds_sched::JobSpec;
        let owner = OwnerWorkload::continuous_exponential(10.0, 0.1).unwrap();
        let cfg: super::SchedConfig =
            nds_sched::SchedConfig::homogeneous(2, &owner, vec![JobSpec::at_zero(2, 10.0)]);
        cfg.validate().unwrap();
    }
}
