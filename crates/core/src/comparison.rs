//! Analysis-vs-simulation agreement (the paper's §2.2 validation) and
//! measured-vs-analytic comparison rows (§4).

use crate::error::CoreError;
use nds_cluster::discrete::DiscreteTaskSim;
use nds_cluster::experiment::{JobTimeExperiment, ValidationOutcome};
use nds_model::expectation::expected_job_time_int;
use nds_model::params::OwnerParams;

/// One comparison point: a configuration, its analytic prediction, and
/// the simulated measurement.
#[derive(Debug, Clone, Copy)]
pub struct ComparisonRow {
    /// Workstations.
    pub workstations: u32,
    /// Integer task demand.
    pub task_demand: u64,
    /// Owner utilization.
    pub utilization: f64,
    /// The model's `E_j`.
    pub analytic: f64,
    /// The validation outcome (simulation CI vs analytic).
    pub outcome: ValidationOutcome,
}

/// Reruns the paper's validation: simulate points of Figure 1 with the
/// model-exact discrete simulator and check the analysis falls within
/// the batch-means confidence interval.
#[derive(Debug, Clone)]
pub struct ValidationSuite {
    /// Owner demand `O`.
    pub owner_demand: f64,
    /// Batches per run.
    pub batches: usize,
    /// Samples per batch.
    pub batch_size: usize,
    /// Master seed.
    pub seed: u64,
}

impl ValidationSuite {
    /// The paper's configuration (20 × 1000 at 90%): slow but faithful.
    pub fn paper(seed: u64) -> Self {
        Self {
            owner_demand: 10.0,
            batches: 20,
            batch_size: 1000,
            seed,
        }
    }

    /// A quick configuration for tests and smoke checks.
    pub fn quick(seed: u64) -> Self {
        Self {
            owner_demand: 10.0,
            batches: 10,
            batch_size: 100,
            seed,
        }
    }

    /// Validate one `(J, W, U)` point of Figure 1.
    pub fn validate_point(
        &self,
        job_demand: f64,
        workstations: u32,
        utilization: f64,
    ) -> Result<ComparisonRow, CoreError> {
        let t = (job_demand / f64::from(workstations)).round().max(1.0) as u64;
        let owner = OwnerParams::from_utilization(self.owner_demand, utilization)?;
        let analytic = expected_job_time_int(t, workstations, owner);
        let sim = DiscreteTaskSim::paper(t, owner.request_prob(), self.owner_demand);
        let experiment = JobTimeExperiment {
            sim,
            workstations,
            batches: self.batches,
            batch_size: self.batch_size,
            confidence: 0.90,
            seed: self.seed,
        };
        let outcome = experiment.validate_against(analytic)?;
        Ok(ComparisonRow {
            workstations,
            task_demand: t,
            utilization,
            analytic,
            outcome,
        })
    }

    /// Validate a whole sweep; returns one row per `(W, U)` pair.
    pub fn validate_sweep(
        &self,
        job_demand: f64,
        workstations: &[u32],
        utilizations: &[f64],
    ) -> Result<Vec<ComparisonRow>, CoreError> {
        let mut rows = Vec::with_capacity(workstations.len() * utilizations.len());
        for &u in utilizations {
            for &w in workstations {
                rows.push(self.validate_point(job_demand, w, u)?);
            }
        }
        Ok(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_point_agrees_with_model() {
        let suite = ValidationSuite::quick(42);
        let row = suite.validate_point(1000.0, 10, 0.10).unwrap();
        assert_eq!(row.task_demand, 100);
        // 1000 job samples: agreement should be comfortably within 2%.
        assert!(
            row.outcome.relative_error < 0.02,
            "rel err {} (analytic {}, simulated {})",
            row.outcome.relative_error,
            row.analytic,
            row.outcome.report.mean
        );
    }

    #[test]
    fn sweep_produces_grid() {
        let suite = ValidationSuite::quick(1);
        let rows = suite
            .validate_sweep(1000.0, &[5, 10], &[0.05, 0.10])
            .unwrap();
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert!(row.analytic >= row.task_demand as f64);
        }
    }

    #[test]
    fn analytic_grows_with_utilization() {
        let suite = ValidationSuite::quick(3);
        let low = suite.validate_point(1000.0, 10, 0.01).unwrap();
        let high = suite.validate_point(1000.0, 10, 0.20).unwrap();
        assert!(high.analytic > low.analytic);
        assert!(high.outcome.report.mean > low.outcome.report.mean);
    }

    #[test]
    fn invalid_utilization_propagates() {
        let suite = ValidationSuite::quick(3);
        assert!(suite.validate_point(1000.0, 10, 1.5).is_err());
    }
}
