//! The paper's §5 quantitative conclusions, encoded and checkable.
//!
//! 1. Task-ratio thresholds for 80% weighted efficiency: ≥ 8 at
//!    `U = 5%`, ≥ 13 at `U = 10%`, ≥ 20 at `U = 20%`. (The paper does
//!    not name the pool size; the model reproduces these integers most
//!    closely at `W = 100` — see `nds_model::solver` — so the checks run
//!    there, with the Figure-7 size `W = 60` reported alongside.)
//! 2. Scaled problems: at `W = 100`, `T₀ = 100`, response-time inflation
//!    of 14/30/44/71% for `U` = 1/5/10/20%.
//! 3. Fixed-size anchors (§3.1): at `W = 100`, `J = 1000`, speedup is
//!    ~61% of optimal at `U = 1%` and ~32.5% at `U = 20%`; weighted
//!    efficiency ~61.5% and ~41%.

use crate::error::CoreError;
use nds_model::metrics::evaluate;
use nds_model::params::{ModelInputs, OwnerParams};
use nds_model::scaled;
use nds_model::solver;

/// Result of checking one published claim against the model.
#[derive(Debug, Clone)]
pub struct ConclusionCheck {
    /// Which claim (human-readable).
    pub claim: String,
    /// The paper's published value.
    pub published: f64,
    /// What the model reproduces.
    pub reproduced: f64,
    /// Acceptance tolerance (absolute, in the claim's units).
    pub tolerance: f64,
    /// Whether the reproduction is within tolerance.
    pub passed: bool,
}

impl ConclusionCheck {
    fn new(claim: impl Into<String>, published: f64, reproduced: f64, tolerance: f64) -> Self {
        Self {
            claim: claim.into(),
            published,
            reproduced,
            tolerance,
            passed: (published - reproduced).abs() <= tolerance,
        }
    }
}

/// Check every §5 quantitative claim. Returns one entry per claim.
pub fn check_all_conclusions() -> Result<Vec<ConclusionCheck>, CoreError> {
    let mut checks = Vec::new();
    let o = 10.0;

    // 1. Task-ratio thresholds (at W = 100, where the integers match).
    for (u, published) in [(0.05, 8.0), (0.10, 13.0), (0.20, 20.0)] {
        let owner = OwnerParams::from_utilization(o, u)?;
        let ratio = solver::required_task_ratio(100, owner, 0.80)?;
        checks.push(ConclusionCheck::new(
            format!("task ratio for 80% weighted efficiency at U={}%", u * 100.0),
            published,
            ratio,
            1.5,
        ));
    }

    // 2. Scaled-problem inflation at W = 100, T0 = 100.
    for (u, published) in [(0.01, 0.14), (0.05, 0.30), (0.10, 0.44), (0.20, 0.71)] {
        let owner = OwnerParams::from_utilization(o, u)?;
        let infl = scaled::inflation_at(100.0, 100, owner)?;
        checks.push(ConclusionCheck::new(
            format!("scaled-problem inflation at W=100, U={}%", u * 100.0),
            published,
            infl,
            0.02,
        ));
    }

    // 3. Fixed-size anchors at W = 100, J = 1000.
    let anchors = [
        (0.01, 0.61, "fraction of optimal speedup at U=1%"),
        (0.20, 0.325, "fraction of optimal speedup at U=20%"),
    ];
    for (u, published, claim) in anchors {
        let inputs = ModelInputs::from_utilization(1000.0, 100, o, u)?;
        let m = evaluate(&inputs);
        checks.push(ConclusionCheck::new(claim, published, m.efficiency, 0.02));
    }
    let weighted = [
        (0.01, 0.615, "weighted efficiency at U=1%"),
        (0.20, 0.41, "weighted efficiency at U=20%"),
    ];
    for (u, published, claim) in weighted {
        let inputs = ModelInputs::from_utilization(1000.0, 100, o, u)?;
        let m = evaluate(&inputs);
        checks.push(ConclusionCheck::new(
            claim,
            published,
            m.weighted_efficiency,
            0.02,
        ));
    }

    Ok(checks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_conclusions_reproduce() {
        let checks = check_all_conclusions().unwrap();
        assert_eq!(checks.len(), 11);
        for c in &checks {
            assert!(
                c.passed,
                "claim failed: {} (published {}, reproduced {:.4}, tol {})",
                c.claim, c.published, c.reproduced, c.tolerance
            );
        }
    }

    #[test]
    fn thresholds_ordered() {
        let checks = check_all_conclusions().unwrap();
        let ratios: Vec<f64> = checks
            .iter()
            .filter(|c| c.claim.contains("task ratio"))
            .map(|c| c.reproduced)
            .collect();
        assert_eq!(ratios.len(), 3);
        assert!(ratios[0] < ratios[1] && ratios[1] < ratios[2]);
    }

    #[test]
    fn check_constructor_tolerance() {
        let ok = ConclusionCheck::new("x", 1.0, 1.05, 0.1);
        assert!(ok.passed);
        let bad = ConclusionCheck::new("x", 1.0, 1.2, 0.1);
        assert!(!bad.passed);
    }
}
