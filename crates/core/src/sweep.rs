//! Parallel parameter-sweep helpers.
//!
//! Figure generation evaluates the model at hundreds of parameter
//! points; each point is independent, so sweeps fan out across scoped
//! threads (no external thread-pool dependency; results return in input
//! order).

/// Map `f` over `items`, fanning out across up to `max_threads` scoped
/// threads. Results are returned in input order. Falls back to a
/// sequential map for tiny inputs.
pub fn parallel_map<T, R, F>(items: &[T], max_threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = max_threads
        .max(1)
        .min(items.len().max(1))
        .min(available_threads());
    if threads <= 1 || items.len() < 2 {
        return items.iter().map(&f).collect();
    }
    // Chunk the input; each thread maps one chunk; splice in order.
    let chunk_size = items.len().div_ceil(threads);
    let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        let mut remaining: &mut [Option<R>] = &mut results;
        let mut handles = Vec::new();
        for chunk_index in 0..threads {
            let start = chunk_index * chunk_size;
            if start >= items.len() {
                break;
            }
            let len = chunk_size.min(items.len() - start);
            let (head, tail) = remaining.split_at_mut(len);
            remaining = tail;
            let slice = &items[start..start + len];
            let f = &f;
            handles.push(scope.spawn(move || {
                for (slot, item) in head.iter_mut().zip(slice) {
                    *slot = Some(f(item));
                }
            }));
        }
        for h in handles {
            h.join().expect("sweep worker panicked");
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("all slots filled"))
        .collect()
}

fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, 8, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_fallback() {
        let items = vec![5u32];
        let out = parallel_map(&items, 8, |&x| x + 1);
        assert_eq!(out, vec![6]);
        let empty: Vec<u32> = vec![];
        let out: Vec<u32> = parallel_map(&empty, 8, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn thread_count_larger_than_items() {
        let items = vec![1u32, 2, 3];
        let out = parallel_map(&items, 64, |&x| x * x);
        assert_eq!(out, vec![1, 4, 9]);
    }

    #[test]
    fn expensive_closure_parallelizes_correctly() {
        // Results must match the sequential computation exactly.
        let items: Vec<u64> = (0..64).collect();
        let expected: Vec<u64> = items
            .iter()
            .map(|&x| (0..1000).fold(x, |a, b| a ^ b))
            .collect();
        let out = parallel_map(&items, 8, |&x| (0..1000).fold(x, |a, b| a ^ b));
        assert_eq!(out, expected);
    }
}
