//! Convenience re-exports for downstream users.
//!
//! ```
//! use nds_core::prelude::*;
//!
//! let inputs = ModelInputs::from_utilization(1000.0, 10, 10.0, 0.05).unwrap();
//! let metrics = evaluate(&inputs);
//! assert!(metrics.speedup > 1.0);
//! ```

pub use crate::analyzer::{Assessment, FeasibilityAnalyzer};
pub use crate::comparison::{ComparisonRow, ValidationSuite};
pub use crate::conclusions::{check_all_conclusions, ConclusionCheck};
pub use crate::error::CoreError;
pub use crate::report::Table;
pub use crate::scenario::Scenario;
pub use crate::sim::{
    closed, periodic, poisson, single_job, Backend, Flight, JobShape, OpenArrivals,
    Report as SimReport, Sim, SimError, Workload as SimWorkload,
};
pub use crate::sweep::parallel_map;

pub use nds_cluster::continuous::ContinuousWorkstation;
pub use nds_cluster::discrete::{DiscreteTaskSim, ProgressGuarantee};
pub use nds_cluster::experiment::JobTimeExperiment;
pub use nds_cluster::job::JobRunner;
pub use nds_cluster::owner::OwnerWorkload;
pub use nds_model::expectation::{expected_job_time, expected_task_time};
pub use nds_model::metrics::{evaluate, FeasibilityMetrics, Metrics};
pub use nds_model::params::{ModelInputs, OwnerParams, Workload};
pub use nds_pvm::harness::ValidationHarness;
pub use nds_sched::{
    EvictionPolicy, FailureModel, GangPolicy, GangStats, JobSpec, Lifetime, PlacementKind,
    QueueDiscipline,
};
pub use nds_stats::rng::Xoshiro256StarStar;

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_names_resolve() {
        use super::*;
        let _ = ModelInputs::from_utilization(100.0, 2, 10.0, 0.1).unwrap();
        let _ = Xoshiro256StarStar::new(1);
        let _ = Scenario::FixedSize1K;
    }
}
