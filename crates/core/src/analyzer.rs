//! The one-stop feasibility API.
//!
//! [`FeasibilityAnalyzer`] answers the paper's title question for a
//! concrete configuration: metrics, a feasibility verdict against the
//! paper's 80%-of-possible-speedup bar, the required task ratio, the
//! largest useful pool, and tail statistics the paper's mean-only
//! analysis cannot provide.

use crate::error::CoreError;
use nds_model::distribution::JobTimeDistribution;
use nds_model::metrics::{evaluate, Metrics};
use nds_model::params::{ModelInputs, OwnerParams, Workload};
use nds_model::solver;

/// Builder-configured analyzer for one system configuration.
#[derive(Debug, Clone)]
pub struct FeasibilityAnalyzer {
    inputs: ModelInputs,
    target: f64,
}

/// Everything [`FeasibilityAnalyzer::assess`] computes.
#[derive(Debug, Clone)]
pub struct Assessment {
    /// All §3.1 metrics at this configuration.
    pub metrics: Metrics,
    /// Verdict against the target weighted efficiency.
    pub feasible: bool,
    /// Target weighted efficiency used (default: the paper's 0.80).
    pub target_weighted_efficiency: f64,
    /// Minimum task ratio that would reach the target on this pool.
    pub required_task_ratio: f64,
    /// Largest pool size at which this job still meets the target.
    pub max_useful_workstations: Option<u32>,
    /// 95th percentile of the job completion time (integer-T model).
    pub job_time_p95: f64,
    /// Worst-case job completion time `T(1 + O)`.
    pub job_time_worst_case: f64,
}

/// Builder for [`FeasibilityAnalyzer`].
#[derive(Debug, Clone, Default)]
pub struct Builder {
    workstations: Option<u32>,
    owner_demand: Option<f64>,
    owner_utilization: Option<f64>,
    job_demand: Option<f64>,
    target: Option<f64>,
}

impl Builder {
    /// Pool size `W`.
    pub fn workstations(mut self, w: u32) -> Self {
        self.workstations = Some(w);
        self
    }

    /// Owner service demand `O` (time units).
    pub fn owner_demand(mut self, o: f64) -> Self {
        self.owner_demand = Some(o);
        self
    }

    /// Owner utilization `U` in (0, 1).
    pub fn owner_utilization(mut self, u: f64) -> Self {
        self.owner_utilization = Some(u);
        self
    }

    /// Total job demand `J` (time units on a dedicated machine).
    pub fn job_demand(mut self, j: f64) -> Self {
        self.job_demand = Some(j);
        self
    }

    /// Target weighted efficiency (default 0.80, the paper's bar).
    pub fn target_weighted_efficiency(mut self, t: f64) -> Self {
        self.target = Some(t);
        self
    }

    /// Validate and build the analyzer.
    pub fn build(self) -> Result<FeasibilityAnalyzer, CoreError> {
        let missing = |what: &str| CoreError::Builder {
            reason: format!("{what} is required"),
        };
        let w = self.workstations.ok_or_else(|| missing("workstations"))?;
        let o = self.owner_demand.ok_or_else(|| missing("owner_demand"))?;
        let u = self
            .owner_utilization
            .ok_or_else(|| missing("owner_utilization"))?;
        let j = self.job_demand.ok_or_else(|| missing("job_demand"))?;
        let target = self.target.unwrap_or(0.80);
        if !(0.0..1.0).contains(&target) || target <= 0.0 {
            return Err(CoreError::Builder {
                reason: format!("target weighted efficiency {target} must be in (0,1)"),
            });
        }
        let inputs = ModelInputs::new(Workload::new(j, w)?, OwnerParams::from_utilization(o, u)?);
        Ok(FeasibilityAnalyzer { inputs, target })
    }
}

impl FeasibilityAnalyzer {
    /// Start building an analyzer.
    pub fn builder() -> Builder {
        Builder::default()
    }

    /// Construct directly from validated model inputs.
    pub fn from_inputs(inputs: ModelInputs, target: f64) -> Self {
        Self { inputs, target }
    }

    /// The underlying model inputs.
    pub fn inputs(&self) -> &ModelInputs {
        &self.inputs
    }

    /// Run the full assessment.
    pub fn assess(&self) -> Result<Assessment, CoreError> {
        let metrics = evaluate(&self.inputs);
        let owner = self.inputs.owner();
        let w = self.inputs.workload().workstations();
        let required_task_ratio = solver::required_task_ratio(w, owner, self.target)?;
        let max_useful_workstations = solver::max_workstations(
            self.inputs.workload().job_demand(),
            owner,
            self.target,
            4096,
        )?;
        let t_int = self.inputs.task_demand().round().max(1.0) as u64;
        let dist = JobTimeDistribution::new(t_int, w, owner);
        Ok(Assessment {
            metrics,
            feasible: metrics.weighted_efficiency >= self.target,
            target_weighted_efficiency: self.target,
            required_task_ratio,
            max_useful_workstations,
            job_time_p95: dist.quantile(0.95),
            job_time_worst_case: dist.worst_case(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyzer(j: f64, w: u32, o: f64, u: f64) -> FeasibilityAnalyzer {
        FeasibilityAnalyzer::builder()
            .workstations(w)
            .owner_demand(o)
            .owner_utilization(u)
            .job_demand(j)
            .build()
            .unwrap()
    }

    #[test]
    fn big_job_on_lightly_used_pool_is_feasible() {
        let a = analyzer(60_000.0, 60, 10.0, 0.05).assess().unwrap();
        assert!(a.feasible);
        assert!(a.metrics.task_ratio >= a.required_task_ratio);
        assert!(a.job_time_p95 >= a.metrics.expected_job_time * 0.99);
        assert!(a.job_time_worst_case >= a.job_time_p95);
    }

    #[test]
    fn tiny_job_on_busy_pool_is_infeasible() {
        let a = analyzer(600.0, 60, 10.0, 0.20).assess().unwrap();
        assert!(!a.feasible);
        assert!(a.metrics.task_ratio < a.required_task_ratio);
        // But some smaller pool would work:
        assert!(a.max_useful_workstations.is_some());
    }

    #[test]
    fn max_useful_pool_consistent_with_verdict() {
        let a = analyzer(10_000.0, 20, 10.0, 0.10);
        let assessment = a.assess().unwrap();
        if let Some(max_w) = assessment.max_useful_workstations {
            if assessment.feasible {
                assert!(max_w >= 20, "feasible at 20 implies max >= 20, got {max_w}");
            } else {
                assert!(max_w < 20);
            }
        }
    }

    #[test]
    fn custom_target_respected() {
        let strict = FeasibilityAnalyzer::builder()
            .workstations(60)
            .owner_demand(10.0)
            .owner_utilization(0.10)
            .job_demand(60_000.0)
            .target_weighted_efficiency(0.99)
            .build()
            .unwrap()
            .assess()
            .unwrap();
        assert_eq!(strict.target_weighted_efficiency, 0.99);
        let lax = analyzer(60_000.0, 60, 10.0, 0.10).assess().unwrap();
        assert!(strict.required_task_ratio > lax.required_task_ratio);
    }

    #[test]
    fn builder_reports_missing_fields() {
        let err = FeasibilityAnalyzer::builder().build().unwrap_err();
        assert!(matches!(err, CoreError::Builder { .. }));
        let err = FeasibilityAnalyzer::builder()
            .workstations(4)
            .owner_demand(10.0)
            .owner_utilization(0.1)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("job_demand"));
    }

    #[test]
    fn builder_rejects_bad_target() {
        let err = FeasibilityAnalyzer::builder()
            .workstations(4)
            .owner_demand(10.0)
            .owner_utilization(0.1)
            .job_demand(100.0)
            .target_weighted_efficiency(1.5)
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::Builder { .. }));
    }

    #[test]
    fn invalid_model_params_propagate() {
        let err = FeasibilityAnalyzer::builder()
            .workstations(4)
            .owner_demand(1.0)
            .owner_utilization(0.95) // implies P > 1
            .job_demand(100.0)
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::Model(_)));
    }
}
