//! Micro-benchmarks of the substrates: binomial/model evaluation, the
//! discrete and continuous simulators, the DES facility, and the RNG —
//! the ablation data behind DESIGN.md's performance notes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nds_cluster::continuous::ContinuousWorkstation;
use nds_cluster::discrete::DiscreteTaskSim;
use nds_cluster::owner::OwnerWorkload;
use nds_des::{Facility, Request, SimTime};
use nds_model::binomial::Binomial;
use nds_model::expectation::expected_job_time_int;
use nds_model::params::OwnerParams;
use nds_stats::rng::Xoshiro256StarStar;
use std::hint::black_box;

fn binomial_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("binomial_pmf");
    for t in [100u64, 1_000, 10_000, 100_000] {
        g.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            b.iter(|| black_box(Binomial::new(t, 1.0 / 90.0)))
        });
    }
    g.finish();
}

fn model_evaluation(c: &mut Criterion) {
    let owner = OwnerParams::from_utilization(10.0, 0.10).unwrap();
    let mut g = c.benchmark_group("expected_job_time");
    for (t, w) in [(100u64, 10u32), (1_000, 100), (10_000, 100)] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("t{t}_w{w}")),
            &(t, w),
            |b, &(t, w)| b.iter(|| black_box(expected_job_time_int(t, w, owner))),
        );
    }
    g.finish();
}

fn discrete_sim(c: &mut Criterion) {
    let sim = DiscreteTaskSim::paper(10_000, 1.0 / 90.0, 10.0);
    c.bench_function("discrete_task_t10000", |b| {
        let mut rng = Xoshiro256StarStar::new(1);
        b.iter(|| black_box(sim.run_task(&mut rng)))
    });
}

fn continuous_sim(c: &mut Criterion) {
    let ws = ContinuousWorkstation::new(OwnerWorkload::continuous_exponential(10.0, 0.10).unwrap());
    c.bench_function("continuous_task_t1000_u10", |b| {
        let mut rng = Xoshiro256StarStar::new(1);
        b.iter(|| black_box(ws.run_task(1000.0, &mut rng)))
    });
}

fn facility_preemption_cycle(c: &mut Criterion) {
    c.bench_function("facility_preempt_resume_cycle", |b| {
        b.iter(|| {
            let mut f = Facility::new("cpu");
            f.submit(
                SimTime::ZERO,
                Request {
                    id: 0,
                    priority: 0,
                    demand: 100.0,
                },
            )
            .unwrap();
            for i in 1..=50u64 {
                let now = SimTime::new(i as f64);
                f.submit(
                    now,
                    Request {
                        id: i,
                        priority: 10,
                        demand: 0.5,
                    },
                )
                .unwrap();
                f.complete_current(SimTime::new(i as f64 + 0.5)).unwrap();
            }
            black_box(f.preemptions())
        })
    });
}

fn rng_throughput(c: &mut Criterion) {
    c.bench_function("xoshiro_next_f64_1k", |b| {
        let mut rng = Xoshiro256StarStar::new(42);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..1000 {
                acc += rng.next_f64();
            }
            black_box(acc)
        })
    });
}

criterion_group!(
    name = substrate;
    config = Criterion::default().sample_size(20);
    targets = binomial_construction,
    model_evaluation,
    discrete_sim,
    continuous_sim,
    facility_preemption_cycle,
    rng_throughput
);
criterion_main!(substrate);
