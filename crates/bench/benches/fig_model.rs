//! Criterion benches for the analytical figures (1–9) — one group per
//! figure, measuring full regeneration of the published series.

use criterion::{criterion_group, criterion_main, Criterion};
use nds_bench::figures::{
    fixed_size_figure, scaled_figure, task_ratio_by_size_figure, task_ratio_figure_w60,
    FixedSizeMetric,
};
use std::hint::black_box;

fn fig01(c: &mut Criterion) {
    c.bench_function("fig01_speedup_j1000", |b| {
        b.iter(|| black_box(fixed_size_figure(1000.0, FixedSizeMetric::Speedup)))
    });
}

fn fig02(c: &mut Criterion) {
    c.bench_function("fig02_efficiency_j1000", |b| {
        b.iter(|| black_box(fixed_size_figure(1000.0, FixedSizeMetric::Efficiency)))
    });
}

fn fig03(c: &mut Criterion) {
    c.bench_function("fig03_weighted_speedup_j1000", |b| {
        b.iter(|| black_box(fixed_size_figure(1000.0, FixedSizeMetric::WeightedSpeedup)))
    });
}

fn fig04(c: &mut Criterion) {
    c.bench_function("fig04_weighted_efficiency_j1000", |b| {
        b.iter(|| {
            black_box(fixed_size_figure(
                1000.0,
                FixedSizeMetric::WeightedEfficiency,
            ))
        })
    });
}

fn fig05(c: &mut Criterion) {
    c.bench_function("fig05_weighted_speedup_j10000", |b| {
        b.iter(|| {
            black_box(fixed_size_figure(
                10_000.0,
                FixedSizeMetric::WeightedSpeedup,
            ))
        })
    });
}

fn fig06(c: &mut Criterion) {
    c.bench_function("fig06_weighted_efficiency_j10000", |b| {
        b.iter(|| {
            black_box(fixed_size_figure(
                10_000.0,
                FixedSizeMetric::WeightedEfficiency,
            ))
        })
    });
}

fn fig07(c: &mut Criterion) {
    c.bench_function("fig07_task_ratio_w60", |b| {
        b.iter(|| black_box(task_ratio_figure_w60()))
    });
}

fn fig08(c: &mut Criterion) {
    c.bench_function("fig08_task_ratio_by_size", |b| {
        b.iter(|| black_box(task_ratio_by_size_figure()))
    });
}

fn fig09(c: &mut Criterion) {
    c.bench_function("fig09_scaled", |b| b.iter(|| black_box(scaled_figure())));
}

criterion_group!(
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = fig01, fig02, fig03, fig04, fig05, fig06, fig07, fig08, fig09
);
criterion_main!(figures);
