//! Criterion benches for the simulation-backed experiments: Figures
//! 10–11 (PVM validation) and V1 (simulation vs analysis). Reduced
//! replication counts keep bench wall time sane; the binaries run the
//! full configurations.

use criterion::{criterion_group, criterion_main, Criterion};
use nds_bench::figures::{validation_speedup_figure, validation_time_figure};
use nds_bench::validation::sim_vs_analysis;
use nds_core::comparison::ValidationSuite;
use std::hint::black_box;

fn fig10(c: &mut Criterion) {
    c.bench_function("fig10_validation_time_2reps", |b| {
        b.iter(|| black_box(validation_time_figure(2)))
    });
}

fn fig11(c: &mut Criterion) {
    c.bench_function("fig11_validation_speedup_2reps", |b| {
        b.iter(|| black_box(validation_speedup_figure(2)))
    });
}

fn v1_point(c: &mut Criterion) {
    let suite = ValidationSuite::quick(7);
    c.bench_function("v1_single_point_w10_u10", |b| {
        b.iter(|| black_box(suite.validate_point(1000.0, 10, 0.10).unwrap()))
    });
}

fn v1_sweep(c: &mut Criterion) {
    c.bench_function("v1_quick_sweep", |b| {
        b.iter(|| black_box(sim_vs_analysis(true, 7)))
    });
}

criterion_group!(
    name = validation;
    config = Criterion::default().sample_size(10);
    targets = fig10, fig11, v1_point, v1_sweep
);
criterion_main!(validation);
