//! Extension: **trace-driven datacenter workloads**
//! (`Scenario::DatacenterTrace`) — million-job synthetic traces pushed
//! through the engine's streaming job feed.
//!
//! Modes:
//!
//! * `ext_trace` — the full run: a 1,000-machine x 1,000,000-job
//!   synthetic diurnal day streamed in bounded chunks, reported as
//!   events/sec (min-time over replications) plus the scenario-sized
//!   day, with peak RSS as the bounded-memory witness. Emits the same
//!   JSON shape as `perf_core` (`{"name", "events", "seconds",
//!   "best_events_per_sec"}` rows).
//! * `ext_trace --smoke` — small check-mode run for CI: replays the
//!   committed fixture (`tests/data/datacenter_small.csv`), verifies
//!   the streamed run is byte-identical to the materialized run and to
//!   a second streamed run, and checks every scenario counts events.
//!
//! The streaming path holds O(chunk + pool) job state: the feed is
//! pulled lazily in `chunk`-sized batches and each job's record is
//! retired the moment it completes, so the 1M-job day never
//! materializes its spec vector.

// A throughput benchmark exists to read the wall clock.
#![allow(clippy::disallowed_methods)]

use nds_core::scenario::Scenario;
use nds_core::sim::{SimError, SyntheticTrace, TraceWorkload, Workload};
use nds_sched::{
    EvictionPolicy, GangPolicy, PlacementKind, QueueDiscipline, SchedConfig, SchedMetrics,
};
use std::time::Instant;

const SEED: u64 = 0x7ACE;

/// One streamed measurement: the engine's executed-event count and the
/// wall-clock seconds of the fastest replication.
struct Measurement {
    name: &'static str,
    events: u64,
    seconds: f64,
    best_events_per_sec: f64,
    metrics: SchedMetrics,
}

/// Lower a workload to a bare scheduler configuration around the given
/// owner population (no gang, defaults elsewhere — the streaming
/// engine's supported envelope).
fn config(owners: Vec<nds_cluster::owner::OwnerWorkload>, replication: u64) -> SchedConfig {
    SchedConfig {
        owners,
        jobs: Vec::new(),
        placement: PlacementKind::LeastLoaded,
        eviction: EvictionPolicy::SuspendResume,
        gang: GangPolicy::Off,
        failures: None,
        discipline: QueueDiscipline::Fcfs,
        admission_threshold: 1.0,
        estimator_tau: 1_000.0,
        calibration_horizon: 0.0,
        seed: SEED,
        replication,
        max_events: 2_000_000_000,
    }
}

/// Stream `workload` through the engine `reps` times and keep the
/// fastest replication (min-time methodology, like `perf_core`).
fn measure(
    name: &'static str,
    workload: &dyn Workload,
    owners: &[nds_cluster::owner::OwnerWorkload],
    chunk: usize,
    reps: u64,
) -> Result<Measurement, SimError> {
    let mut best = f64::MAX;
    let mut out: Option<(u64, SchedMetrics)> = None;
    for replication in 0..reps {
        let mut feed = workload.feed(SEED, replication)?;
        let cfg = config(owners.to_vec(), replication);
        let start = Instant::now();
        let (metrics, events) = cfg.run_streamed(feed.as_mut(), chunk, &mut |_, _| {})?;
        let seconds = start.elapsed().as_secs_f64();
        if seconds < best {
            best = seconds;
            out = Some((events, metrics));
        }
    }
    let (events, metrics) = out.expect("at least one replication ran");
    Ok(Measurement {
        name,
        events,
        seconds: best,
        best_events_per_sec: events as f64 / best.max(f64::MIN_POSITIVE),
        metrics,
    })
}

/// Peak resident set size of this process in kilobytes, from
/// `/proc/self/status` (`None` off Linux) — the bounded-memory witness
/// for the million-job run.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// The full-size day: 1,000 machines x 1,000,000 jobs, sized to stay
/// stable (offered load ~= 75% of the pool's spare capacity) so that
/// in-flight job state — and therefore the streaming window — stays
/// bounded: E\[tasks\]=4.5, E\[demand\]~=13 => ~680 CPU-s/s offered
/// against ~920 spare.
fn million_job_day() -> SyntheticTrace {
    SyntheticTrace::datacenter(1_000, 1_000_000)
        .demands(1.5, 5.0, 500.0)
        .max_tasks(8)
}

fn smoke(fixture: &str) -> Result<(), String> {
    // 1. The committed fixture replays, streamed == materialized.
    let trace = TraceWorkload::from_path(fixture).map_err(|e| format!("{fixture}: {e}"))?;
    let owners = vec![
        nds_cluster::owner::OwnerWorkload::continuous_exponential(10.0, 0.10)
            .expect("valid owner");
        8
    ];
    let streamed = measure("fixture_replay", &trace, &owners, 16, 1).map_err(|e| e.to_string())?;
    let again = measure("fixture_replay", &trace, &owners, 16, 1).map_err(|e| e.to_string())?;
    if streamed.metrics != again.metrics || streamed.events != again.events {
        return Err("fixture replay is not deterministic".into());
    }
    // Byte-identity against the materialized engine: collect the
    // streamed per-job records through the sink (streamed metrics keep
    // `jobs` empty) and splice them back before comparing.
    let mut records = Vec::new();
    let mut feed = trace.feed(SEED, 0).map_err(|e| e.to_string())?;
    let (mut spliced, streamed_events) = config(owners.clone(), 0)
        .run_streamed(feed.as_mut(), 16, &mut |_, record| records.push(record))
        .map_err(|e| e.to_string())?;
    spliced.jobs = records;
    let mut materialized = config(owners.clone(), 0);
    materialized.jobs = trace.jobs().to_vec();
    let (direct, direct_events) = materialized.run_counted().map_err(|e| e.to_string())?;
    if direct != spliced || direct_events != streamed_events {
        return Err("streamed fixture replay diverged from the materialized run".into());
    }
    println!(
        "smoke fixture_replay      {:>9} events  {:>12.0} events/sec  (== materialized)",
        streamed.events, streamed.best_events_per_sec
    );

    // 2. A small synthetic day streams at two chunk sizes to the same
    //    metrics (chunking is a pure execution strategy).
    let day = SyntheticTrace::datacenter(32, 2_000);
    let day_owners = day.owners(SEED, 0).map_err(|e| e.to_string())?;
    let coarse =
        measure("synthetic_small", &day, &day_owners, 1_024, 1).map_err(|e| e.to_string())?;
    let fine = measure("synthetic_small", &day, &day_owners, 64, 1).map_err(|e| e.to_string())?;
    if coarse.metrics != fine.metrics || coarse.events != fine.events {
        return Err("chunk size changed the synthetic day's result".into());
    }
    if coarse.events == 0 {
        return Err("synthetic day executed no events".into());
    }
    println!(
        "smoke synthetic_small     {:>9} events  {:>12.0} events/sec  (chunk-invariant)",
        coarse.events, coarse.best_events_per_sec
    );
    println!("ext_trace --smoke: fixture + synthetic day OK");
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        let fixture = args
            .iter()
            .position(|a| a == "--fixture")
            .and_then(|i| args.get(i + 1))
            .map_or("tests/data/datacenter_small.csv", String::as_str);
        if let Err(e) = smoke(fixture) {
            eprintln!("ext_trace --smoke: {e}");
            std::process::exit(1);
        }
        return;
    }

    let scenario = Scenario::DatacenterTrace;
    let mut rows = Vec::new();

    // The scenario-sized day (64 machines), replicated for min-time.
    let day = scenario.trace_generator().expect("trace scenario");
    let owners = day.owners(SEED, 0).expect("valid owner mix");
    let chunk = scenario.trace_stream_chunk().expect("trace scenario");
    rows.push(measure("scenario_day", &day, &owners, chunk, 3).expect("scenario day completes"));

    // The acceptance run: 1,000 machines x 1,000,000 jobs, one pass.
    let big = million_job_day();
    let big_owners = big.owners(SEED, 0).expect("valid owner mix");
    rows.push(
        measure("datacenter_1m", &big, &big_owners, 8_192, 1).expect("million-job day completes"),
    );

    println!(
        "{} — streaming trace replay (chunked feed, O(chunk + pool) memory)\n",
        scenario.figure_label()
    );
    for m in &rows {
        println!(
            "{:<16} {:>12} events  {:>8.2} s  {:>12.0} events/sec  (makespan {:.0}, {} tasks)",
            m.name,
            m.events,
            m.seconds,
            m.best_events_per_sec,
            m.metrics.makespan,
            m.metrics.completed_tasks,
        );
        assert!(
            m.metrics.jobs.is_empty(),
            "streamed runs must not materialize per-job records"
        );
    }
    if let Some(kb) = peak_rss_kb() {
        println!(
            "\npeak RSS: {:.1} MiB (bounded-memory witness)",
            kb as f64 / 1024.0
        );
    }

    // The perf_core-shaped JSON block, for BENCH_*.json records.
    println!("{{");
    println!("  \"benchmark\": \"ext_trace\",");
    println!(
        "  \"note\": \"streamed via SchedConfig::run_streamed; best_events_per_sec per min-time methodology\","
    );
    println!("  \"scenarios\": [");
    for (i, m) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        println!(
            "    {{\"name\": \"{}\", \"events\": {}, \"seconds\": {:.4}, \"best_events_per_sec\": {:.0}}}{comma}",
            m.name, m.events, m.seconds, m.best_events_per_sec
        );
    }
    println!("  ]");
    println!("}}");
}
