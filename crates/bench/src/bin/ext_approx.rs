//! Extension: O(1) extreme-value approximation vs the exact model.
//!
//! Design-space searches need millions of E_j evaluations; the Gumbel/
//! Blom approximation gets within a few percent at a fraction of the
//! cost. This table maps where it is trustworthy.
use nds_core::report::Table;
use nds_model::approx::approx_expected_job_time;
use nds_model::expectation::expected_job_time_int;
use nds_model::params::OwnerParams;

fn main() {
    let mut table = Table::new("Exact E_j vs O(1) extreme-value approximation")
        .headers(["T", "U", "W", "exact", "approx", "rel err"]);
    for (t, u, w) in [
        (100u64, 0.10, 10u32),
        (100, 0.10, 100),
        (1000, 0.05, 60),
        (1000, 0.20, 100),
        (10_000, 0.10, 100),
        (10_000, 0.01, 1000),
    ] {
        let owner = OwnerParams::from_utilization(10.0, u).unwrap();
        let exact = expected_job_time_int(t, w, owner);
        let approx = approx_expected_job_time(t as f64, w, owner);
        table.row([
            t.to_string(),
            format!("{u:.2}"),
            w.to_string(),
            format!("{exact:.2}"),
            format!("{approx:.2}"),
            format!("{:.2}%", (approx - exact).abs() / exact * 100.0),
        ]);
    }
    print!("{}", table.render());
}
