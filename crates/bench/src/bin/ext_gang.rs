//! Extension: gang scheduling / co-allocation
//! (`Scenario::GangPool`) — the paper's barrier-synchronized jobs taken
//! seriously.
//!
//! The paper's model lets every task finish on its own clock; a real
//! barrier-synchronized job only progresses while *all* of its tasks
//! run at once, so one returning owner stalls the whole gang. This
//! experiment sweeps owner-arrival intensity (utilization) against gang
//! size at a fixed total workload (48 tasks x 90 CPU units) and prices
//! the two regimes:
//!
//! * **independent** — the PR-1 engine, suspend-resume per task;
//! * **gang suspend-all** — all-or-nothing co-allocation, lockstep
//!   execution, whole-gang suspension on any owner return.
//!
//! Each grid cell is an independent experiment, so the sweep fans out
//! across `nds_core::sweep::parallel_map`'s scoped threads (the engine
//! itself stays single-threaded); results are spliced back in input
//! order, making the output byte-identical to a serial sweep.

use nds_cluster::owner::OwnerWorkload;
use nds_core::report::Table;
use nds_core::scenario::Scenario;
use nds_core::sim::{closed, Report, Sim};
use nds_core::sweep::parallel_map;
use nds_sched::{EvictionPolicy, GangPolicy, JobSpec};

const REPS: u64 = 3;
const SEED: u64 = 9_311;
/// Total tasks per cell — every swept gang size divides it, so the
/// total demand is identical across the whole grid.
const TOTAL_TASKS: u32 = 48;
const TASK_DEMAND: f64 = 90.0;
const ARRIVAL_GAP: f64 = 30.0;

struct Cell {
    utilization: f64,
    gang_size: u32,
}

struct CellResult {
    gang: Report,
    independent: Report,
}

fn jobs_for(gang_size: u32) -> Vec<JobSpec> {
    JobSpec::stream(TOTAL_TASKS / gang_size, gang_size, TASK_DEMAND, ARRIVAL_GAP)
}

fn run_cell(w: u32, cell: &Cell) -> CellResult {
    let owner = OwnerWorkload::continuous_exponential(10.0, cell.utilization)
        .expect("scenario utilizations are valid");
    let run = |gang: GangPolicy| {
        let report = Sim::pool(w)
            .owners(&owner)
            .gang(gang)
            .eviction(EvictionPolicy::SuspendResume)
            .workload(closed(jobs_for(cell.gang_size)))
            .calibration(10_000.0)
            .seed(SEED)
            .replications(REPS)
            .run()
            .expect("gang sweep runs complete");
        assert!(report.is_consistent(), "work conservation violated");
        report
    };
    CellResult {
        gang: run(GangPolicy::SuspendAll),
        independent: run(GangPolicy::Off),
    }
}

fn main() {
    let scenario = Scenario::GangPool;
    let w = scenario.workstations()[0];
    let utilizations = scenario.utilizations();
    let gang_sizes = scenario.gang_sizes();

    let cells: Vec<Cell> = gang_sizes
        .iter()
        .flat_map(|&gang_size| {
            utilizations.iter().map(move |&utilization| Cell {
                utilization,
                gang_size,
            })
        })
        .collect();
    // Experiment-level sharding: one scoped-thread task per grid cell.
    let results = parallel_map(&cells, 8, |cell| run_cell(w, cell));

    let headers = || {
        let mut h = vec!["gang size".to_string()];
        h.extend(utilizations.iter().map(|u| format!("U={u}")));
        h
    };
    let mut makespan = Table::new(format!(
        "{} - mean makespan, gang suspend-all vs independent tasks \
         ({TOTAL_TASKS} tasks x {TASK_DEMAND}, {REPS} reps)",
        scenario.figure_label()
    ))
    .headers(headers());
    let mut stall = Table::new(
        "barrier-stall member-time and per-gang co-allocation wait (gang / wait)".to_string(),
    )
    .headers(headers());
    let mut frag =
        Table::new("gang fragmentation: free machine-time no waiting gang could use".to_string())
            .headers(headers());

    let mut iter = results.iter();
    for &gang_size in &gang_sizes {
        let mut makespan_row = vec![format!("{gang_size}")];
        let mut stall_row = vec![format!("{gang_size}")];
        let mut frag_row = vec![format!("{gang_size}")];
        for _ in &utilizations {
            let cell = iter.next().expect("one result per cell");
            makespan_row.push(format!(
                "{:.0} vs {:.0}",
                cell.gang.mean_makespan(),
                cell.independent.mean_makespan()
            ));
            stall_row.push(format!(
                "{:.0} / {:.0}",
                cell.gang.mean_barrier_stall(),
                cell.gang.mean_coalloc_wait()
            ));
            frag_row.push(format!("{:.0}", cell.gang.mean_fragmentation()));
        }
        makespan.row(makespan_row);
        stall.row(stall_row);
        frag.row(frag_row);
    }
    print!("{}", makespan.render());
    println!();
    print!("{}", stall.render());
    println!();
    print!("{}", frag.render());

    println!(
        "\nGangs of one task match the independent engine exactly (the\n\
         workspace's invariant tests prove it bit-for-bit). As gangs widen,\n\
         co-allocation waits for enough simultaneously-free machines and\n\
         every owner return freezes all members, so the barrier premium\n\
         grows with both gang size and owner-arrival intensity — the cost\n\
         the paper's independent-completion model leaves out."
    );
}
