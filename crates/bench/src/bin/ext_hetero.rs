//! Extension: heterogeneous owner utilization.
//!
//! The analytical generalization `C[n] = prod_i S_i[n]` vs the uniform
//! pool at the same mean utilization: the busiest station dominates the
//! max, so spreading the same total utilization unevenly hurts.
use nds_core::report::Table;
use nds_model::hetero::HeteroSystem;
use nds_model::params::OwnerParams;

fn main() {
    let t = 200u64;
    let mut table = Table::new(format!(
        "Heterogeneous pools, 8 stations, T = {t}, mean U = 10%"
    ))
    .headers(["pool", "E[job time]", "weighted efficiency"]);
    let owner = |u: f64| OwnerParams::from_utilization(10.0, u).unwrap();
    let pools: [(&str, Vec<OwnerParams>); 4] = [
        ("uniform 10%", vec![owner(0.10); 8]),
        (
            "split 5% / 15%",
            (0..8)
                .map(|i| owner(if i < 4 { 0.05 } else { 0.15 }))
                .collect(),
        ),
        (
            "one hot station (38%)",
            (0..8)
                .map(|i| owner(if i == 0 { 0.38 } else { 0.06 }))
                .collect(),
        ),
        (
            "near-idle + two hot (30%)",
            (0..8)
                .map(|i| owner(if i < 2 { 0.30 } else { 0.0334 }))
                .collect(),
        ),
    ];
    for (label, stations) in pools {
        let sys = HeteroSystem::new(t, stations).unwrap();
        table.row([
            label.to_string(),
            format!("{:.2}", sys.expected_job_time()),
            format!("{:.4}", sys.weighted_efficiency()),
        ]);
    }
    print!("{}", table.render());
}
