//! Extension: owner-demand variance (the paper's §5 caveat).
//!
//! The paper assumes deterministic owner demands and warns its results
//! are optimistic because real demands have much larger variance
//! (Sauer & Chandy). This experiment quantifies that: mean max task
//! time across W = 12 stations for owner-demand CV² of 0 (paper),
//! 1 (exponential), 4 and 16 (hyperexponential), at equal mean demand
//! and utilization.
//!
//! Built through the unified `Sim` builder: this is the degenerate
//! closed configuration (one job, one task per station,
//! suspend-resume), so it lowers to the `JobRunner` fast path, and the
//! 200 replications shard across scoped threads (`.shards`) with
//! byte-identical results to the serial sweep.
use nds_cluster::owner::OwnerWorkload;
use nds_core::report::Table;
use nds_core::sim::{single_job, Sim};

/// Replication shards (experiment-level parallelism; the engine stays
/// single-threaded and results splice back in replication order).
const SHARDS: usize = 8;

fn main() {
    let reps = 200u64;
    let w = 12u32;
    let task_demand = 300.0;
    let utilization = 0.10;
    let mut table = Table::new(format!(
        "Owner-demand variance vs interference (W={w}, T={task_demand}, U={utilization})"
    ))
    .headers([
        "service CV^2",
        "mean max task time",
        "slowdown vs dedicated",
    ]);
    for (label, owner) in [
        (
            "0 (deterministic-ish)",
            OwnerWorkload::high_variance(10.0, utilization, 1.0).unwrap(),
        ),
        (
            "1 (exponential)",
            OwnerWorkload::continuous_exponential(10.0, utilization).unwrap(),
        ),
        (
            "4 (H2)",
            OwnerWorkload::high_variance(10.0, utilization, 4.0).unwrap(),
        ),
        (
            "16 (H2)",
            OwnerWorkload::high_variance(10.0, utilization, 16.0).unwrap(),
        ),
    ] {
        let report = Sim::pool(w)
            .owners(owner)
            .workload(single_job(w, task_demand))
            .seed(77)
            .replications(reps)
            .shards(SHARDS)
            .run()
            .expect("degenerate runs complete");
        let mean = report.mean_makespan();
        table.row([
            label.to_string(),
            format!("{mean:.1}"),
            format!("{:.3}x", mean / task_demand),
        ]);
    }
    print!("{}", table.render());
    println!("\nhigher variance => heavier max-task tail => worse job times,");
    println!("confirming the paper's deterministic-demand results are optimistic.");
}
