//! Extension: removing the progress guarantee (the paper's third
//! optimism bullet). Without guaranteed task progress between owner
//! requests, owners can re-request back-to-back and delays compound:
//! E_t grows from T(1 + O·P) to T(1 + O·P/(1-P)).
use nds_cluster::discrete::DiscreteTaskSim;
use nds_core::report::Table;
use nds_stats::rng::Xoshiro256StarStar;

fn main() {
    let t = 1000u64;
    let o = 10.0;
    let reps = 2000;
    let mut table = Table::new(format!("Progress guarantee vs none (T={t}, O={o})")).headers([
        "P",
        "guaranteed mean",
        "no-guarantee mean",
        "theory ratio",
    ]);
    for p in [0.01, 0.05, 0.10, 0.20] {
        let base = DiscreteTaskSim::paper(t, p, o);
        let worse = base.without_guarantee();
        let mut r1 = Xoshiro256StarStar::new(1);
        let mut r2 = Xoshiro256StarStar::new(2);
        let m1: f64 = (0..reps)
            .map(|_| base.run_task(&mut r1).execution_time)
            .sum::<f64>()
            / reps as f64;
        let m2: f64 = (0..reps)
            .map(|_| worse.run_task(&mut r2).execution_time)
            .sum::<f64>()
            / reps as f64;
        let theory = (1.0 + o * p / (1.0 - p)) / (1.0 + o * p);
        table.row([
            format!("{p:.2}"),
            format!("{m1:.1}"),
            format!("{m2:.1}"),
            format!("{theory:.3}"),
        ]);
    }
    print!("{}", table.render());
}
