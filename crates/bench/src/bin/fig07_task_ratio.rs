//! Figure 7: weighted efficiency vs task ratio at W = 60.
use nds_bench::figures::task_ratio_figure_w60;

fn main() {
    print!("{}", task_ratio_figure_w60().to_table(4).render());
}
