//! V1: rerun the paper's §2.2 validation — the discrete-time simulator
//! against the analysis, batch-means CIs. Pass `--paper` for the full
//! 20x1000-sample configuration (slow); default is the quick profile.
use nds_bench::validation::{sim_vs_analysis, sim_vs_analysis_table};

fn main() {
    let quick = !std::env::args().any(|a| a == "--paper");
    let rows = sim_vs_analysis(quick, 2024);
    print!("{}", sim_vs_analysis_table(&rows).render());
    let agreeing = rows.iter().filter(|r| r.outcome.agrees()).count();
    println!("\n{agreeing}/{} points agree with the analysis", rows.len());
}
