//! Extension: synchronization amplifies interference.
//!
//! The paper's job has exactly one barrier (at the end). Iterative
//! codes barrier every round; each round pays its own max-of-W owner
//! delay. Same total demand, same owners — only the round count varies.
use nds_cluster::owner::OwnerWorkload;
use nds_core::report::Table;
use nds_model::expectation::expected_job_time;
use nds_model::params::OwnerParams;
use nds_pvm::apps::sync_rounds;
use nds_pvm::lan::LanModel;
use nds_pvm::vm::{InterferenceMode, VirtualMachine};

fn main() {
    let reps = 50u64;
    let w = 12usize;
    let demand = 600.0;
    let u = 0.10;
    let owner_model = OwnerParams::from_utilization(10.0, u).unwrap();
    let mut table = Table::new(format!(
        "Synchronized rounds (W={w}, total T={demand}, U={u}): interference per barrier"
    ))
    .headers([
        "rounds K",
        "measured compute",
        "model K*E_j(T/K)",
        "slowdown vs K=1",
    ]);
    let mut base = 0.0;
    for k in [1u32, 4, 16, 64] {
        let owner = OwnerWorkload::continuous_exponential(10.0, u).unwrap();
        let mut sum = 0.0;
        for rep in 0..reps {
            let mut vm = VirtualMachine::new(
                w,
                InterferenceMode::Continuous(owner.clone()),
                LanModel::instantaneous(),
                1993 ^ u64::from(k) << 32 ^ rep,
            )
            .unwrap();
            sum += sync_rounds::run(&mut vm, demand, k, rep)
                .unwrap()
                .compute_time;
        }
        let measured = sum / reps as f64;
        if k == 1 {
            base = measured;
        }
        let model = f64::from(k) * expected_job_time(demand / f64::from(k), w as u32, owner_model);
        table.row([
            k.to_string(),
            format!("{measured:.1}"),
            format!("{model:.1}"),
            format!("{:.3}x", measured / base),
        ]);
    }
    print!("{}", table.render());
    println!("\nevery barrier converts one max-of-W into K of them: the task");
    println!("ratio that matters is T/(K*O), not T/O — synchronized codes need");
    println!("K-times-larger problems to stay feasible.");
}
