//! Extension: multiple parallel jobs sharing the pool (paper §5's
//! "more complex workloads").
use nds_cluster::multi::{JobSpec, MultiJobExperiment};
use nds_cluster::owner::OwnerWorkload;
use nds_core::report::Table;

fn main() {
    let reps = 30u64;
    let w = 8u32;
    let owner = OwnerWorkload::continuous_exponential(10.0, 0.05).unwrap();
    let mut table = Table::new(format!(
        "Co-scheduled parallel jobs (W={w}, task demand 300 each, U=5%)"
    ))
    .headers([
        "jobs in system",
        "job 1 response",
        "last job response",
        "last-job slowdown",
    ]);
    for n in [1usize, 2, 3, 4] {
        let exp = MultiJobExperiment {
            jobs: (0..n)
                .map(|_| JobSpec {
                    task_demand: 300.0,
                    arrival: 0.0,
                })
                .collect(),
            workstations: w,
            owner: owner.clone(),
            seed: 515,
        };
        let means = exp.mean_response_times(reps);
        table.row([
            n.to_string(),
            format!("{:.1}", means[0]),
            format!("{:.1}", means[n - 1]),
            format!("{:.2}x", means[n - 1] / 300.0),
        ]);
    }
    print!("{}", table.render());
    println!("\nFIFO task queues serialize rival jobs on every workstation:");
    println!("the k-th job waits for k-1 task demands plus all owner bursts.");
}
