//! Figure 5: weighted speedup vs number of workstations, J = 10,000.
use nds_bench::figures::{fixed_size_figure, FixedSizeMetric};

fn main() {
    let fig = fixed_size_figure(10_000.0, FixedSizeMetric::WeightedSpeedup);
    print!("{}", fig.to_table(3).render());
}
