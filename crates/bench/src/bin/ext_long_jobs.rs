//! Extension: long-running owner jobs (the paper's §5 open problem).
//!
//! Mix rare long owner jobs into the workload at a fixed 5% total
//! utilization and watch feasibility collapse even though utilization
//! is unchanged — the effect the paper says "must be solved if
//! distributed computing is to be feasible".
//!
//! Built through the unified `Sim` builder: this is the degenerate
//! closed configuration (one job, one task per station,
//! suspend-resume), so it lowers to the `JobRunner` fast path, and the
//! 200 replications shard across scoped threads (`.shards`) with
//! byte-identical results to the serial sweep.
use nds_cluster::owner::OwnerWorkload;
use nds_core::report::Table;
use nds_core::sim::{single_job, Sim};

/// Replication shards (experiment-level parallelism; the engine stays
/// single-threaded and results splice back in replication order).
const SHARDS: usize = 8;

fn main() {
    let reps = 200u64;
    let w = 12u32;
    let task_demand = 300.0;
    let mut table = Table::new(format!(
        "Long owner jobs at fixed 5% utilization (W={w}, T={task_demand})"
    ))
    .headers(["long-job mix", "mean max task time", "p95 max task time"]);
    for (label, owner) in [
        (
            "none (short bursts only)",
            OwnerWorkload::continuous_exponential(5.0, 0.05).unwrap(),
        ),
        (
            "0.5% of bursts = 300 s",
            OwnerWorkload::with_long_jobs(5.0, 300.0, 0.005, 0.05).unwrap(),
        ),
        (
            "2% of bursts = 300 s",
            OwnerWorkload::with_long_jobs(5.0, 300.0, 0.02, 0.05).unwrap(),
        ),
        (
            "2% of bursts = 1200 s",
            OwnerWorkload::with_long_jobs(5.0, 1200.0, 0.02, 0.05).unwrap(),
        ),
    ] {
        let report = Sim::pool(w)
            .owners(owner)
            .workload(single_job(w, task_demand))
            .seed(99)
            .replications(reps)
            .shards(SHARDS)
            .run()
            .expect("degenerate runs complete");
        let mut times: Vec<f64> = report.runs.iter().map(|m| m.makespan).collect();
        times.sort_by(f64::total_cmp);
        let mean = times.iter().sum::<f64>() / reps as f64;
        let p95 = times[(reps as usize * 95) / 100];
        table.row([label.to_string(), format!("{mean:.1}"), format!("{p95:.1}")]);
    }
    print!("{}", table.render());
}
