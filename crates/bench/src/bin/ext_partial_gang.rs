//! Extension: partial-gang co-scheduling (`Scenario::GangPool`) — the
//! Ousterhout-style bridge between independent tasks and all-or-nothing
//! gangs.
//!
//! PR 3 left the pool with two extremes: fully independent tasks
//! (`GangPolicy::Off`, every task on its own clock) and all-or-nothing
//! gangs (`SuspendAll`, one returning owner freezes everything). Real
//! co-scheduled systems sit between them: a barrier-synchronized job
//! keeps making progress — at a degraded rate — as long as *enough* of
//! its tasks still run. This experiment sweeps owner-arrival intensity
//! (utilization) against the co-scheduling floor `min_running / width`
//! for gangs of 8 on the 16-station pool and prices the spectrum:
//!
//! * a **low floor** behaves like independent tasks sharing one clock —
//!   owner returns shave the rate instead of stopping the job;
//! * a **floor of 1.0** *is* `SuspendAll` (the workspace property tests
//!   pin the equivalence bit-for-bit), paying the full barrier premium.
//!
//! Between them the sweep shows how much makespan the floor buys back,
//! how much wall-clock time gangs spend degraded, and the mean
//! effective parallelism actually extracted from the pool. The
//! floor-violation counter — a gang observed running below its floor —
//! must read zero in every cell; the binary exits non-zero otherwise.
//!
//! Each grid cell is an independent experiment, so the sweep fans out
//! across `nds_core::sweep::parallel_map`'s scoped threads (the engine
//! itself stays single-threaded); results are spliced back in input
//! order, making the output byte-identical to a serial sweep.

use nds_cluster::owner::OwnerWorkload;
use nds_core::report::Table;
use nds_core::scenario::Scenario;
use nds_core::sim::{closed, Report, Sim};
use nds_core::sweep::parallel_map;
use nds_sched::{EvictionPolicy, GangPolicy, JobSpec};

const REPS: u64 = 3;
const SEED: u64 = 27_431;
/// Total tasks per cell — identical total demand in every grid cell.
const TOTAL_TASKS: u32 = 48;
const GANG_SIZE: u32 = 8;
const TASK_DEMAND: f64 = 90.0;
const ARRIVAL_GAP: f64 = 30.0;

struct Cell {
    utilization: f64,
    frac: f64,
}

fn run_cell(w: u32, cell: &Cell) -> Report {
    let owner = OwnerWorkload::continuous_exponential(10.0, cell.utilization)
        .expect("scenario utilizations are valid");
    let jobs = JobSpec::stream(TOTAL_TASKS / GANG_SIZE, GANG_SIZE, TASK_DEMAND, ARRIVAL_GAP);
    let report = Sim::pool(w)
        .owners(&owner)
        .gang(GangPolicy::PartialFrac {
            min_running_frac: cell.frac,
        })
        .eviction(EvictionPolicy::SuspendResume)
        .workload(closed(jobs))
        .calibration(10_000.0)
        .seed(SEED)
        .replications(REPS)
        .run()
        .expect("partial-gang sweep runs complete");
    assert!(report.is_consistent(), "work conservation violated");
    report
}

fn main() {
    let scenario = Scenario::GangPool;
    let w = scenario.workstations()[0];
    let utilizations = scenario.utilizations();
    let fracs = scenario.partial_fracs();

    let cells: Vec<Cell> = fracs
        .iter()
        .flat_map(|&frac| {
            utilizations
                .iter()
                .map(move |&utilization| Cell { utilization, frac })
        })
        .collect();
    // Experiment-level sharding: one scoped-thread task per grid cell.
    let results = parallel_map(&cells, 8, |cell| run_cell(w, cell));

    let headers = || {
        let mut h = vec!["min_running / k".to_string()];
        h.extend(utilizations.iter().map(|u| format!("U={u}")));
        h
    };
    let mut makespan = Table::new(format!(
        "{} - mean makespan across the co-scheduling floor \
         ({TOTAL_TASKS} tasks x {TASK_DEMAND} as gangs of {GANG_SIZE}, {REPS} reps; \
         frac 1.0 == suspend-all)",
        scenario.figure_label()
    ))
    .headers(headers());
    let mut degraded = Table::new(
        "degraded-mode time: wall-clock gangs spent computing below full width".to_string(),
    )
    .headers(headers());
    let mut parallelism = Table::new(
        "mean effective parallelism (running members averaged over the makespan)".to_string(),
    )
    .headers(headers());

    let mut violations = 0u64;
    let mut iter = results.iter();
    for &frac in &fracs {
        let floor = GangPolicy::PartialFrac {
            min_running_frac: frac,
        }
        .floor_for(GANG_SIZE);
        let label = format!("{floor}/{GANG_SIZE}");
        let mut makespan_row = vec![label.clone()];
        let mut degraded_row = vec![label.clone()];
        let mut parallelism_row = vec![label];
        for _ in &utilizations {
            let report = iter.next().expect("one result per cell");
            violations += report
                .runs
                .iter()
                .map(|m| m.gang.floor_violations + m.gang.lockstep_violations)
                .sum::<u64>();
            makespan_row.push(format!("{:.0}", report.mean_makespan()));
            degraded_row.push(format!("{:.0}", report.mean_degraded_time()));
            parallelism_row.push(format!("{:.2}", report.mean_effective_parallelism()));
        }
        makespan.row(makespan_row);
        degraded.row(degraded_row);
        parallelism.row(parallelism_row);
    }
    print!("{}", makespan.render());
    println!();
    print!("{}", degraded.render());
    println!();
    print!("{}", parallelism.render());

    println!(
        "\nLow floors ride through owner returns at a degraded rate, so\n\
         makespan grows gently with owner intensity; at frac 1.0 the floor\n\
         is the full gang and every owner return freezes all members —\n\
         exactly suspend-all, which the workspace property tests pin\n\
         bit-for-bit. Degraded time peaks at low floors under heavy owner\n\
         traffic: the job is almost always computing, almost never whole."
    );
    println!(
        "\nfloor/lockstep violations across the sweep: {violations} {}",
        if violations == 0 {
            "(invariant holds)"
        } else {
            "(INVARIANT VIOLATED)"
        }
    );
    if violations != 0 {
        std::process::exit(1);
    }
}
