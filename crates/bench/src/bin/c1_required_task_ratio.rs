//! C1: the paper's §5 thresholds — task ratio required for 80% weighted
//! efficiency, by utilization and pool size.
use nds_bench::validation::required_ratio_table;

fn main() {
    print!("{}", required_ratio_table().render());
    println!("\npaper's §5 claims: >=8 at U=5%, >=13 at U=10%, >=20 at U=20%");
}
