//! Figure 3: weighted speedup vs number of workstations, J = 1000.
use nds_bench::figures::{fixed_size_figure, FixedSizeMetric};

fn main() {
    let fig = fixed_size_figure(1000.0, FixedSizeMetric::WeightedSpeedup);
    print!("{}", fig.to_table(3).render());
}
