//! Extension: an **open** system — Poisson job arrivals on the pool
//! (`Scenario::OpenStream`), the first workload the paper's closed
//! model cannot express.
//!
//! Jobs arrive forever at rate λ; the figure of merit is no longer the
//! makespan but the **steady-state mean response time**, estimated
//! with the paper's own §2.2 machinery: batch means over the
//! post-warm-up per-job response sequence, a Student-t interval at
//! 90%, and the Law & Kelton lag-1 autocorrelation check on the batch
//! means.

use nds_cluster::owner::OwnerWorkload;
use nds_core::report::Table;
use nds_core::scenario::Scenario;
use nds_core::sim::{poisson, JobShape};
use nds_sched::EvictionPolicy;

const SEED: u64 = 41_017;

fn main() {
    let scenario = Scenario::OpenStream;
    let (tasks, task_demand) = scenario.open_job_shape().expect("open scenario");
    let (jobs, warmup) = scenario.open_window().expect("open scenario");
    let base_rate = scenario.open_arrival_rate().expect("open scenario");

    // 1. Response time vs owner utilization at the scenario's rate.
    let mut by_u = Table::new(format!(
        "{} - steady-state response vs owner utilization (λ={base_rate}, {jobs} jobs, {warmup} warm-up)",
        scenario.figure_label()
    ))
    .headers(["U", "mean response", "90% CI", "rel. width", "goodput frac", "batch lag-1"]);
    for u in scenario.utilizations() {
        let owner = OwnerWorkload::continuous_exponential(10.0, u).expect("valid utilization");
        let report = scenario
            .sim(&owner)
            .expect("open scenario lowers to Sim")
            .eviction(EvictionPolicy::Checkpoint {
                interval: 30.0,
                overhead: 1.0,
            })
            .seed(SEED)
            .run()
            .expect("open run completes");
        assert!(report.is_consistent(), "work conservation violated");
        let ss = report
            .steady_state
            .expect("open workloads report steady state");
        by_u.row([
            format!("{u:.2}"),
            format!("{:.1}", ss.response.mean),
            format!("±{:.1}", ss.response.half_width),
            format!("{:.3}", ss.response.relative_half_width()),
            format!("{:.3}", report.mean_goodput_fraction()),
            format!("{:+.2}", ss.diagnostic.lag1),
        ]);
    }
    print!("{}", by_u.render());

    // 2. Response time vs arrival rate at the middle utilization: the
    //    open system's defining curve (response blows up as offered
    //    load approaches the pool's spare capacity).
    let u_mid = scenario.utilizations()[scenario.utilizations().len() / 2];
    let owner = OwnerWorkload::continuous_exponential(10.0, u_mid).expect("valid utilization");
    let w = scenario.workstations()[0];
    let mut by_rate = Table::new(format!(
        "response vs arrival rate (U={u_mid}, W={w}, {tasks} tasks x {task_demand})"
    ))
    .headers([
        "λ",
        "offered load",
        "mean response",
        "90% CI",
        "mean queue wait",
    ]);
    for rate in [0.01, 0.02, 0.04, 0.05] {
        let offered = rate * f64::from(tasks) * task_demand / (f64::from(w) * (1.0 - u_mid));
        let report = scenario
            .sim(&owner)
            .expect("open scenario lowers to Sim")
            .workload(
                poisson(rate, JobShape::new(tasks, task_demand))
                    .jobs(jobs)
                    .warmup(warmup),
            )
            .seed(SEED)
            .run()
            .expect("open run completes");
        let ss = report.steady_state.expect("steady state");
        by_rate.row([
            format!("{rate}"),
            format!("{:.2}", offered),
            format!("{:.1}", ss.response.mean),
            format!("±{:.1}", ss.response.half_width),
            format!("{:.1}", report.mean_queue_wait()),
        ]);
    }
    println!();
    print!("{}", by_rate.render());

    println!(
        "\nAn open stream is the workload the paper's one-job model cannot\n\
         express: response time includes queueing behind rival jobs, and\n\
         grows without bound as offered load approaches the pool's spare\n\
         capacity — long before owners themselves become the bottleneck."
    );
}
