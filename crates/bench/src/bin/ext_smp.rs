//! Extension: multiprocessor workstations.
//!
//! With k CPUs per workstation, an owner burst only stalls the parallel
//! task when every CPU is busy. One owner per machine: a second CPU
//! absorbs nearly all interference. Several independent owners sharing
//! a departmental server: contention returns.
use nds_cluster::owner::OwnerWorkload;
use nds_cluster::smp::SmpWorkstation;
use nds_core::report::Table;
use nds_stats::rng::Xoshiro256StarStar;

fn mean_slowdown(ws: &SmpWorkstation, demand: f64, reps: u32, seed: u64) -> f64 {
    let mut rng = Xoshiro256StarStar::new(seed);
    let mean: f64 = (0..reps)
        .map(|_| ws.run_task(demand, &mut rng).execution_time)
        .sum::<f64>()
        / f64::from(reps);
    mean / demand
}

fn main() {
    let reps = 300;
    let demand = 300.0;
    let owner = |u: f64| OwnerWorkload::continuous_exponential(10.0, u).unwrap();

    let mut single = Table::new(format!(
        "One owner per machine: task slowdown vs CPU count (T={demand})"
    ))
    .headers(["owner U", "1 CPU", "2 CPUs", "4 CPUs"]);
    for u in [0.05, 0.20, 0.40] {
        let mut row = vec![format!("{:.0}%", u * 100.0)];
        for cpus in [1usize, 2, 4] {
            let ws = SmpWorkstation::new(cpus, owner(u));
            row.push(format!("{:.3}x", mean_slowdown(&ws, demand, reps, 7)));
        }
        single.row(row);
    }
    print!("{}", single.render());
    println!();

    let mut shared = Table::new(format!(
        "Shared departmental server: 4 independent owners at 20% each (T={demand})"
    ))
    .headers(["CPUs", "slowdown"]);
    for cpus in [1usize, 2, 4, 8] {
        let ws = SmpWorkstation::with_owners(cpus, vec![owner(0.20); 4]);
        shared.row([
            cpus.to_string(),
            format!("{:.3}x", mean_slowdown(&ws, demand, reps, 11)),
        ]);
    }
    print!("{}", shared.render());
    println!("\nthe paper's single-CPU model is the worst case; every spare CPU");
    println!("soaks up owner bursts before they can preempt the parallel task.");
}
