//! Figure 6: weighted efficiency vs number of workstations, J = 10,000.
use nds_bench::figures::{fixed_size_figure, FixedSizeMetric};

fn main() {
    let fig = fixed_size_figure(10_000.0, FixedSizeMetric::WeightedEfficiency);
    print!("{}", fig.to_table(4).render());
}
