//! Figure 1: speedup vs number of workstations, J = 1000, O = 10.
use nds_bench::figures::{fixed_size_figure, FixedSizeMetric};

fn main() {
    let fig = fixed_size_figure(1000.0, FixedSizeMetric::Speedup);
    print!("{}", fig.to_table(3).render());
}
