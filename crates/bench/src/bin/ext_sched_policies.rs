//! Extension: cycle-stealing scheduler — eviction policies swept
//! against owner utilization (the `nds-sched` subsystem's headline
//! experiment, `Scenario::SchedulerPool`).
//!
//! The paper's model never loses work because it assumes suspend/resume
//! eviction. Real cycle-stealing systems paid for owner returns in
//! other currencies: restarts burn all progress, migration pays a setup
//! toll, checkpointing trades steady overhead for bounded rollback.
//! This experiment prices those currencies as owner utilization grows.

use nds_cluster::owner::OwnerWorkload;
use nds_core::report::Table;
use nds_core::scenario::Scenario;
use nds_sched::{EvictionPolicy, JobSpec, PlacementKind, SchedConfig, SchedMetrics};

const REPS: u64 = 5;

fn policies() -> Vec<EvictionPolicy> {
    vec![
        EvictionPolicy::SuspendResume,
        EvictionPolicy::Restart,
        EvictionPolicy::Migrate { overhead: 5.0 },
        EvictionPolicy::Checkpoint {
            interval: 30.0,
            overhead: 1.0,
        },
    ]
}

fn run_mean(
    w: u32,
    utilization: f64,
    eviction: EvictionPolicy,
    placement: PlacementKind,
    task_demand: f64,
    job_mix: (u32, u32, f64),
) -> Vec<SchedMetrics> {
    let owner = OwnerWorkload::continuous_exponential(10.0, utilization)
        .expect("scenario utilizations are valid");
    let (jobs, tasks, gap) = job_mix;
    let specs: Vec<JobSpec> = (0..jobs)
        .map(|j| JobSpec {
            tasks,
            task_demand,
            arrival: f64::from(j) * gap,
        })
        .collect();
    let mut cfg = SchedConfig::homogeneous(w, &owner, specs);
    cfg.eviction = eviction;
    cfg.placement = placement;
    cfg.calibration_horizon = 10_000.0;
    cfg.seed = 7_393;
    let runs = cfg.run_replications(REPS).expect("scheduler runs complete");
    for m in &runs {
        assert!(m.is_consistent(), "work conservation violated");
    }
    runs
}

fn mean(runs: &[SchedMetrics], f: impl Fn(&SchedMetrics) -> f64) -> f64 {
    runs.iter().map(&f).sum::<f64>() / runs.len() as f64
}

fn main() {
    let scenario = Scenario::SchedulerPool;
    let w = scenario.workstations()[0];
    let utilizations = scenario.utilizations();
    let task_demand = scenario.sched_task_demand().expect("scheduler scenario");
    let job_mix = scenario.sched_job_mix().expect("scheduler scenario");

    let mut makespan = Table::new(format!(
        "{} - mean makespan by eviction policy ({} jobs x {} tasks x {}, {} reps)",
        scenario.figure_label(),
        job_mix.0,
        job_mix.1,
        task_demand,
        REPS
    ))
    .headers({
        let mut h = vec!["eviction policy".to_string()];
        h.extend(utilizations.iter().map(|u| format!("U={u}")));
        h
    });
    let mut waste =
        Table::new("wasted + overhead CPU as a fraction of delivered (same sweep)".to_string())
            .headers({
                let mut h = vec!["eviction policy".to_string()];
                h.extend(utilizations.iter().map(|u| format!("U={u}")));
                h
            });
    let mut evictions = Table::new("mean evictions per run (same sweep)".to_string()).headers({
        let mut h = vec!["eviction policy".to_string()];
        h.extend(utilizations.iter().map(|u| format!("U={u}")));
        h
    });

    for policy in policies() {
        let mut makespan_row = vec![policy.label()];
        let mut waste_row = vec![policy.label()];
        let mut evict_row = vec![policy.label()];
        for &u in &utilizations {
            let runs = run_mean(
                w,
                u,
                policy,
                PlacementKind::LeastLoaded,
                task_demand,
                job_mix,
            );
            makespan_row.push(format!("{:.0}", mean(&runs, |m| m.makespan)));
            waste_row.push(format!(
                "{:.3}",
                mean(&runs, |m| (1.0 - m.goodput_fraction()).max(0.0))
            ));
            evict_row.push(format!("{:.1}", mean(&runs, |m| m.evictions as f64)));
        }
        makespan.row(makespan_row);
        waste.row(waste_row);
        evictions.row(evict_row);
    }
    print!("{}", makespan.render());
    println!();
    print!("{}", waste.render());
    println!();
    print!("{}", evictions.render());

    // Placement comparison at the middle utilization. The pool is
    // under-subscribed (jobs of 4 tasks on 16 stations) so the policy
    // genuinely chooses among machines, and restart eviction makes a
    // bad choice expensive.
    let u_mid = utilizations[utilizations.len() / 2];
    let light_mix = (8u32, 4u32, 100.0);
    let mut placement_table = Table::new(format!(
        "placement policies at U={u_mid} (restart eviction, {} jobs x {} tasks)",
        light_mix.0, light_mix.1
    ))
    .headers(["placement", "makespan", "mean job response", "wasted CPU"]);
    for kind in PlacementKind::ALL {
        let runs = run_mean(
            w,
            u_mid,
            EvictionPolicy::Restart,
            kind,
            task_demand,
            light_mix,
        );
        placement_table.row([
            kind.name().to_string(),
            format!("{:.0}", mean(&runs, |m| m.makespan)),
            format!("{:.0}", mean(&runs, |m| m.mean_response_time())),
            format!("{:.0}", mean(&runs, |m| m.wasted)),
        ]);
    }
    println!();
    print!("{}", placement_table.render());

    println!(
        "\nSuspend-resume wastes nothing but strands tasks behind owners;\n\
         restart pays with whole lost executions as U grows; migration and\n\
         checkpointing price the middle ground (setup tolls vs. bounded\n\
         rollback plus steady overhead)."
    );
}
