//! Extension: cycle-stealing scheduler — eviction policies swept
//! against owner utilization (the `nds-sched` subsystem's headline
//! experiment, `Scenario::SchedulerPool`), constructed through the
//! unified `Sim` builder.
//!
//! The paper's model never loses work because it assumes suspend/resume
//! eviction. Real cycle-stealing systems paid for owner returns in
//! other currencies: restarts burn all progress, migration pays a setup
//! toll, checkpointing trades steady overhead for bounded rollback.
//! This experiment prices those currencies as owner utilization grows.

use nds_cluster::owner::OwnerWorkload;
use nds_core::report::Table;
use nds_core::scenario::Scenario;
use nds_core::sim::{closed, Report};
use nds_sched::{EvictionPolicy, JobSpec, PlacementKind};

const REPS: u64 = 5;
const SEED: u64 = 7_393;

fn policies() -> Vec<EvictionPolicy> {
    vec![
        EvictionPolicy::SuspendResume,
        EvictionPolicy::Restart,
        EvictionPolicy::Migrate { overhead: 5.0 },
        EvictionPolicy::Checkpoint {
            interval: 30.0,
            overhead: 1.0,
        },
    ]
}

fn run(
    scenario: &Scenario,
    utilization: f64,
    eviction: EvictionPolicy,
    placement: PlacementKind,
    jobs: Option<Vec<JobSpec>>,
) -> Report {
    let owner = OwnerWorkload::continuous_exponential(10.0, utilization)
        .expect("scenario utilizations are valid");
    let mut sim = scenario
        .sim(&owner)
        .expect("scheduler scenario lowers to Sim")
        .eviction(eviction)
        .placement(placement)
        .seed(SEED)
        .replications(REPS);
    if let Some(jobs) = jobs {
        sim = sim.workload(closed(jobs));
    }
    let report = sim.run().expect("scheduler runs complete");
    assert!(report.is_consistent(), "work conservation violated");
    report
}

fn main() {
    let scenario = Scenario::SchedulerPool;
    let utilizations = scenario.utilizations();
    let task_demand = scenario.sched_task_demand().expect("scheduler scenario");
    let job_mix = scenario.sched_job_mix().expect("scheduler scenario");

    let policy_headers = || {
        let mut h = vec!["eviction policy".to_string()];
        h.extend(utilizations.iter().map(|u| format!("U={u}")));
        h
    };
    let mut makespan = Table::new(format!(
        "{} - mean makespan by eviction policy ({} jobs x {} tasks x {}, {} reps)",
        scenario.figure_label(),
        job_mix.0,
        job_mix.1,
        task_demand,
        REPS
    ))
    .headers(policy_headers());
    let mut waste =
        Table::new("wasted + overhead CPU as a fraction of delivered (same sweep)".to_string())
            .headers(policy_headers());
    let mut evictions =
        Table::new("mean evictions per run (same sweep)".to_string()).headers(policy_headers());

    for policy in policies() {
        let mut makespan_row = vec![policy.label()];
        let mut waste_row = vec![policy.label()];
        let mut evict_row = vec![policy.label()];
        for &u in &utilizations {
            let report = run(&scenario, u, policy, PlacementKind::LeastLoaded, None);
            makespan_row.push(format!("{:.0}", report.mean_makespan()));
            waste_row.push(format!(
                "{:.3}",
                report.mean_over(|m| (1.0 - m.goodput_fraction()).max(0.0))
            ));
            evict_row.push(format!("{:.1}", report.mean_evictions()));
        }
        makespan.row(makespan_row);
        waste.row(waste_row);
        evictions.row(evict_row);
    }
    print!("{}", makespan.render());
    println!();
    print!("{}", waste.render());
    println!();
    print!("{}", evictions.render());

    // Placement comparison at the middle utilization. The pool is
    // under-subscribed (jobs of 4 tasks on 16 stations) so the policy
    // genuinely chooses among machines, and restart eviction makes a
    // bad choice expensive.
    let u_mid = utilizations[utilizations.len() / 2];
    let light_jobs = JobSpec::stream(8, 4, task_demand, 100.0);
    let mut placement_table = Table::new(format!(
        "placement policies at U={u_mid} (restart eviction, 8 jobs x 4 tasks)"
    ))
    .headers(["placement", "makespan", "mean job response", "wasted CPU"]);
    for kind in PlacementKind::ALL {
        let report = run(
            &scenario,
            u_mid,
            EvictionPolicy::Restart,
            kind,
            Some(light_jobs.clone()),
        );
        placement_table.row([
            kind.name().to_string(),
            format!("{:.0}", report.mean_makespan()),
            format!("{:.0}", report.response.mean),
            format!("{:.0}", report.mean_wasted()),
        ]);
    }
    println!();
    print!("{}", placement_table.render());

    println!(
        "\nSuspend-resume wastes nothing but strands tasks behind owners;\n\
         restart pays with whole lost executions as U grows; migration and\n\
         checkpointing price the middle ground (setup tolls vs. bounded\n\
         rollback plus steady overhead)."
    );
}
