//! Figure 11: PVM validation — measured speedup vs W per demand.
use nds_bench::figures::validation_speedup_figure;

fn main() {
    let reps = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    print!("{}", validation_speedup_figure(reps).to_table(2).render());
}
