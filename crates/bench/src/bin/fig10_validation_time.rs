//! Figure 10: PVM validation — measured (simulated cluster) and
//! analytic max task execution time vs W, U = 3%, demands 1..16 min.
use nds_bench::figures::validation_time_figure;

fn main() {
    let reps = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    print!("{}", validation_time_figure(reps).to_table(1).render());
}
