//! Figure 9: scaled problem (J = 100·W): job execution time vs W.
use nds_bench::figures::scaled_figure;

fn main() {
    let fig = scaled_figure();
    print!("{}", fig.to_table(2).render());
    // The §3.2 headline numbers: inflation at W = 100 vs dedicated T0.
    println!();
    println!("inflation at W=100 (vs dedicated T0 = 100):");
    for (name, ys) in &fig.curves {
        let last = ys.last().expect("non-empty");
        println!("  {name}: +{:.1}%", (last / 100.0 - 1.0) * 100.0);
    }
}
