//! Extension: **machine failure injection**
//! (`Scenario::FaultyPool`) — the goodput-vs-availability frontier, a
//! figure family the paper never had.
//!
//! The paper's owner returns are benign: a suspend-resume guest waits
//! and loses nothing. Crashes are not benign — they destroy whatever
//! progress the eviction policy left unprotected, whatever the policy.
//! Sweeping MTBF x eviction policy therefore separates two prices that
//! owner-only experiments conflate: the *reclaim* price (restart losses,
//! checkpoint overhead under owner churn) and the *crash* price (work a
//! power cycle destroys). Suspend-resume, unbeatable under benign
//! reclaims, pays the full crash price; checkpointing pays a steady
//! overhead to bound it; adaptive eviction starts cheap and buys
//! protection only once a task has enough progress to be worth saving.
//!
//! Modes:
//!
//! * `ext_faults` — the full sweep: MTBF x eviction policy at the
//!   scenario's pool, with frontier tables (goodput rate, goodput
//!   fraction, crash losses) and a `perf_core`-shaped JSON block.
//! * `ext_faults --json` — the JSON block only (the committed
//!   `BENCH_faults.json` is this mode's output).
//! * `ext_faults --smoke` — CI gate: the small sweep replays
//!   byte-identically, `shards(1)` == `shards(4)` under failures, and a
//!   never-failing model is byte-identical to no model at all.

use nds_cluster::owner::OwnerWorkload;
use nds_core::report::Table;
use nds_core::scenario::Scenario;
use nds_core::sim::{Report, SimBuilder};
use nds_sched::{EvictionPolicy, FailureModel};

const REPS: u64 = 5;
const SEED: u64 = 0xFA17;

/// The scenario's builder with one point of the sweep applied (the
/// `.failures(...)` setter overrides the scenario's default model).
fn sim_at(scenario: &Scenario, mtbf: f64, eviction: EvictionPolicy) -> SimBuilder {
    let owner = OwnerWorkload::continuous_exponential(10.0, scenario.utilizations()[0])
        .expect("scenario utilizations are valid");
    let mttr = scenario.failure_mttr().expect("faulty-pool scenario");
    scenario
        .sim(&owner)
        .expect("faulty-pool scenario lowers to Sim")
        .eviction(eviction)
        .seed(SEED)
        .replications(REPS)
        .failures(FailureModel::exponential(mtbf, mttr).expect("sweep lifetimes valid"))
}

/// The same experiment with no failure model at all: the faulty pool
/// is `Scenario::SchedulerPool` plus crashes, so the scheduler-pool
/// lowering at the faulty pool's owner temperature is the genuine
/// pre-failure baseline.
fn baseline(scenario: &Scenario, eviction: EvictionPolicy) -> SimBuilder {
    let owner = OwnerWorkload::continuous_exponential(10.0, scenario.utilizations()[0])
        .expect("scenario utilizations are valid");
    Scenario::SchedulerPool
        .sim(&owner)
        .expect("scheduler-pool scenario lowers to Sim")
        .eviction(eviction)
        .seed(SEED)
        .replications(REPS)
}

fn run_at(scenario: &Scenario, mtbf: f64, eviction: EvictionPolicy) -> Report {
    let report = sim_at(scenario, mtbf, eviction)
        .run()
        .expect("faulty-pool runs complete");
    assert!(report.is_consistent(), "work conservation violated");
    report
}

/// Mean fraction of machine-time spent down across replications.
fn downtime_fraction(report: &Report) -> f64 {
    let w = f64::from(report.workstations);
    report.mean_over(|m| {
        if m.makespan == 0.0 {
            0.0
        } else {
            m.downtime / (w * m.makespan)
        }
    })
}

struct Cell {
    mtbf: f64,
    eviction: String,
    goodput_rate: f64,
    goodput_fraction: f64,
    crash_lost: f64,
    crashes: f64,
    availability: f64,
    makespan: f64,
}

fn sweep(scenario: &Scenario) -> Vec<Cell> {
    let mut cells = Vec::new();
    for policy in scenario.failure_eviction_policies() {
        for &mtbf in &scenario.failure_mtbfs() {
            let report = run_at(scenario, mtbf, policy);
            cells.push(Cell {
                mtbf,
                eviction: policy.label(),
                goodput_rate: report.mean_over(nds_sched::SchedMetrics::goodput_rate),
                goodput_fraction: report.mean_over(nds_sched::SchedMetrics::goodput_fraction),
                crash_lost: report.mean_over(|m| m.crash_lost),
                crashes: report.mean_over(|m| m.crashes as f64),
                availability: 1.0 - downtime_fraction(&report),
                makespan: report.mean_makespan(),
            });
        }
    }
    cells
}

fn json(scenario: &Scenario, cells: &[Cell]) {
    println!("{{");
    println!("  \"benchmark\": \"ext_faults\",");
    println!(
        "  \"note\": \"MTBF x eviction-policy frontier on {}; mttr {}, {} reps, seed {}; availability = 1 - downtime/(W*makespan)\",",
        scenario.figure_label(),
        scenario.failure_mttr().expect("faulty-pool scenario"),
        REPS,
        SEED
    );
    println!("  \"frontier\": [");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 < cells.len() { "," } else { "" };
        println!(
            "    {{\"eviction\": \"{}\", \"mtbf\": {}, \"availability\": {:.4}, \"goodput_rate\": {:.4}, \"goodput_fraction\": {:.4}, \"crash_lost\": {:.2}, \"crashes\": {:.1}, \"makespan\": {:.1}}}{comma}",
            c.eviction, c.mtbf, c.availability, c.goodput_rate, c.goodput_fraction,
            c.crash_lost, c.crashes, c.makespan
        );
    }
    println!("  ]");
    println!("}}");
}

fn tables(scenario: &Scenario, cells: &[Cell]) {
    let mtbfs = scenario.failure_mtbfs();
    let headers = || {
        let mut h = vec!["eviction policy".to_string()];
        h.extend(mtbfs.iter().map(|m| format!("MTBF={m}")));
        h
    };
    let mut rate = Table::new(format!(
        "{} - goodput per unit makespan by eviction policy (mttr {}, {} reps)",
        scenario.figure_label(),
        scenario.failure_mttr().expect("faulty-pool scenario"),
        REPS
    ))
    .headers(headers());
    let mut fraction =
        Table::new("goodput as a fraction of delivered CPU (same sweep)".to_string())
            .headers(headers());
    let mut lost = Table::new("mean CPU destroyed by crashes per run (same sweep)".to_string())
        .headers(headers());
    for policy in scenario.failure_eviction_policies() {
        let label = policy.label();
        let row: Vec<&Cell> = cells.iter().filter(|c| c.eviction == label).collect();
        rate.row(
            std::iter::once(label.clone())
                .chain(row.iter().map(|c| format!("{:.2}", c.goodput_rate)))
                .collect::<Vec<_>>(),
        );
        fraction.row(
            std::iter::once(label.clone())
                .chain(row.iter().map(|c| format!("{:.3}", c.goodput_fraction)))
                .collect::<Vec<_>>(),
        );
        lost.row(
            std::iter::once(label)
                .chain(row.iter().map(|c| format!("{:.0}", c.crash_lost)))
                .collect::<Vec<_>>(),
        );
    }
    print!("{}", rate.render());
    println!();
    print!("{}", fraction.render());
    println!();
    print!("{}", lost.render());
    // Availability is a property of the failure process, not the
    // policy: one row suffices.
    let mut avail =
        Table::new("observed availability (policy-independent)".to_string()).headers(headers());
    let first = scenario.failure_eviction_policies()[0].label();
    avail.row(
        std::iter::once("any".to_string())
            .chain(
                cells
                    .iter()
                    .filter(|c| c.eviction == first)
                    .map(|c| format!("{:.4}", c.availability)),
            )
            .collect::<Vec<_>>(),
    );
    println!();
    print!("{}", avail.render());
    println!(
        "\nSuspend-resume is unbeatable under benign reclaims but loses whole\n\
         executions to every crash; checkpointing pays steady overhead to\n\
         bound the rollback; adaptive eviction restarts young tasks for free\n\
         and buys checkpoint protection once progress is worth saving."
    );
}

fn smoke(scenario: &Scenario) -> Result<(), String> {
    let policy = EvictionPolicy::Adaptive {
        threshold: 30.0,
        interval: 30.0,
        overhead: 1.0,
    };
    // 1. The sweep point replays byte-identically.
    let a = run_at(scenario, 120.0, policy);
    let b = run_at(scenario, 120.0, policy);
    if a != b {
        return Err("failure sweep is not deterministic".into());
    }
    if a.runs.iter().map(|m| m.crashes).sum::<u64>() == 0 {
        return Err("mtbf 120 sweep point injected no crashes".into());
    }
    println!(
        "smoke replay           {} crashes over {} reps, byte-identical",
        a.runs.iter().map(|m| m.crashes).sum::<u64>(),
        REPS
    );
    // 2. Sharding never changes a failure run.
    let sharded = sim_at(scenario, 120.0, policy)
        .shards(4)
        .run()
        .expect("sharded faulty run completes");
    if a != sharded {
        return Err("shards(4) diverged from shards(1) under failures".into());
    }
    println!("smoke shards(1)==shards(4) under failures");
    // 3. A never-failing model is byte-identical to no model at all:
    //    the failure streams are drawn from their own labeled RNG
    //    streams, so arming them must not move any other sample path.
    let plain = baseline(scenario, policy)
        .run()
        .expect("baseline runs complete");
    let rare = sim_at(scenario, 1e12, policy)
        .run()
        .expect("rare-failure runs complete");
    if rare.runs.iter().any(|m| m.crashes != 0) {
        return Err("mtbf 1e12 crashed inside the horizon".into());
    }
    for (p, r) in plain.runs.iter().zip(&rare.runs) {
        if p.makespan != r.makespan
            || p.delivered != r.delivered
            || p.evictions != r.evictions
            || p.jobs != r.jobs
        {
            return Err("arming a never-failing model moved a sample path".into());
        }
    }
    println!("smoke no-failures == baseline (never-failing model moves nothing)");
    println!("ext_faults --smoke: determinism + sharding + baseline OK");
    Ok(())
}

fn main() {
    let scenario = Scenario::FaultyPool;
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        if let Err(e) = smoke(&scenario) {
            eprintln!("ext_faults --smoke: {e}");
            std::process::exit(1);
        }
        return;
    }
    let cells = sweep(&scenario);
    if args.iter().any(|a| a == "--json") {
        json(&scenario, &cells);
        return;
    }
    tables(&scenario, &cells);
    println!();
    json(&scenario, &cells);
}
