//! perf_core — events-per-second benchmark of the discrete-event hot
//! path (the PR 5 perf baseline).
//!
//! Runs the scheduler engine across the gang-policy spectrum
//! (`Off` / `SuspendAll` / `Partial`) on both **closed** job streams
//! and **open Poisson streams**, plus one scenario shaped exactly like
//! the `ext_open_stream` bench (W=16, λ=0.02, 4×60 jobs, checkpoint
//! eviction). For every scenario it reports executed calendar events,
//! wall time, and events/sec via [`SchedConfig::run_counted`].
//!
//! Usage:
//!
//! * `perf_core` — full measurement, human table + JSON block on
//!   stdout (the JSON is what `BENCH_core.json` records);
//! * `perf_core --json` — JSON only;
//! * `perf_core --smoke` — small check-mode run for CI: counts events,
//!   asserts nonzero throughput on every scenario, finishes in
//!   seconds.
//!
//! Events/sec is the engine's honest denominator: cancelled calendar
//! entries skipped at pop time are not counted, only events whose
//! handler ran.

use nds_cluster::owner::OwnerWorkload;
use nds_core::sim::{poisson, JobShape, Workload};
use nds_sched::{EvictionPolicy, GangPolicy, JobSpec, SchedConfig};
use std::time::Instant;

const SEED: u64 = 0xC0DE;

struct ScenarioSpec {
    name: &'static str,
    workstations: u32,
    utilization: f64,
    tasks: u32,
    task_demand: f64,
    /// `Some(rate)` for an open Poisson stream, `None` for a closed
    /// stream with a fixed inter-arrival gap.
    open_rate: Option<f64>,
    gang: GangPolicy,
    eviction: EvictionPolicy,
}

struct Measurement {
    name: &'static str,
    events: u64,
    seconds: f64,
    best_events_per_sec: f64,
}

impl Measurement {
    /// Best observed per-replication throughput. Each replication is
    /// timed on its own and the fastest wins, which filters scheduler
    /// noise on shared machines (the standard min-time methodology).
    fn events_per_sec(&self) -> f64 {
        self.best_events_per_sec
    }
}

fn scenarios() -> Vec<ScenarioSpec> {
    let ckpt = EvictionPolicy::Checkpoint {
        interval: 30.0,
        overhead: 1.0,
    };
    let grid = |name, open_rate, gang, eviction| ScenarioSpec {
        name,
        workstations: 32,
        utilization: 0.15,
        tasks: 8,
        task_demand: 25.0,
        open_rate,
        gang,
        eviction,
    };
    vec![
        grid("closed_off", None, GangPolicy::Off, ckpt),
        grid(
            "closed_suspend_all",
            None,
            GangPolicy::SuspendAll,
            EvictionPolicy::SuspendResume,
        ),
        grid(
            "closed_partial",
            None,
            GangPolicy::Partial { min_running: 4 },
            EvictionPolicy::SuspendResume,
        ),
        grid("open_off", Some(0.05), GangPolicy::Off, ckpt),
        grid(
            "open_suspend_all",
            Some(0.05),
            GangPolicy::SuspendAll,
            EvictionPolicy::SuspendResume,
        ),
        grid(
            "open_partial",
            Some(0.05),
            GangPolicy::Partial { min_running: 4 },
            EvictionPolicy::SuspendResume,
        ),
        // The headline rows: the `ext_open_stream` bench's exact shape
        // (W=16, U=0.10, 4x60 jobs, checkpoint eviction) at two points
        // of that bin's rate sweep — its base rate λ=0.02, where owner
        // think/use cycles dominate the event mix, and the sweep's top
        // rate λ=0.05, where the queue stays busy and the
        // SegmentEnd→dispatch cycle does.
        ScenarioSpec {
            name: "ext_open_stream",
            workstations: 16,
            utilization: 0.10,
            tasks: 4,
            task_demand: 60.0,
            open_rate: Some(0.02),
            gang: GangPolicy::Off,
            eviction: ckpt,
        },
        ScenarioSpec {
            name: "ext_open_stream_hot",
            workstations: 16,
            utilization: 0.10,
            tasks: 4,
            task_demand: 60.0,
            open_rate: Some(0.05),
            gang: GangPolicy::Off,
            eviction: ckpt,
        },
    ]
}

fn jobs_for(spec: &ScenarioSpec, jobs: usize, replication: u64) -> Vec<JobSpec> {
    match spec.open_rate {
        Some(rate) => poisson(rate, JobShape::new(spec.tasks, spec.task_demand))
            .jobs(jobs)
            .warmup(0)
            .generate(SEED, replication)
            .expect("valid open workload"),
        // Closed stream: fixed gap sized so the queue stays busy
        // without growing unboundedly.
        None => JobSpec::stream(jobs as u32, spec.tasks, spec.task_demand, 8.0),
    }
}

fn measure(spec: &ScenarioSpec, jobs: usize, reps: u64) -> Measurement {
    let owner = OwnerWorkload::continuous_exponential(10.0, spec.utilization)
        .expect("valid owner utilization");
    let mut events = 0u64;
    let mut seconds = 0.0f64;
    let mut best = 0.0f64;
    for rep in 0..reps {
        let mut cfg =
            SchedConfig::homogeneous(spec.workstations, &owner, jobs_for(spec, jobs, rep));
        cfg.gang = spec.gang;
        cfg.eviction = spec.eviction;
        cfg.seed = SEED;
        cfg.replication = rep;
        cfg.max_events = 200_000_000;
        let start = Instant::now();
        let (metrics, ran) = cfg.run_counted().expect("scenario completes");
        let elapsed = start.elapsed().as_secs_f64();
        seconds += elapsed;
        events += ran;
        if elapsed > 0.0 {
            best = best.max(ran as f64 / elapsed);
        }
        assert!(
            metrics.is_consistent(),
            "{}: work conservation violated",
            spec.name
        );
    }
    Measurement {
        name: spec.name,
        events,
        seconds,
        best_events_per_sec: best,
    }
}

fn render_json(results: &[Measurement], jobs: usize, reps: u64) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"jobs_per_run\": {jobs},\n  \"replications\": {reps},\n  \"note\": \"events and seconds are totals across replications; best_events_per_sec is the fastest single replication (min-time methodology)\",\n  \"scenarios\": [\n"
    ));
    for (i, m) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"events\": {}, \"seconds\": {:.4}, \"best_events_per_sec\": {:.0}}}{comma}\n",
            m.name,
            m.events,
            m.seconds,
            m.events_per_sec()
        ));
    }
    out.push_str("  ]\n}");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_only = args.iter().any(|a| a == "--json");

    let (jobs, reps) = if smoke { (24, 1) } else { (8_000, 5) };
    let results: Vec<Measurement> = scenarios()
        .iter()
        .map(|spec| measure(spec, jobs, reps))
        .collect();

    if smoke {
        for m in &results {
            assert!(m.events > 0, "{}: no events executed", m.name);
            assert!(m.events_per_sec() > 0.0, "{}: zero throughput", m.name);
            println!(
                "smoke {:<20} {:>9} events  {:>12.0} events/sec",
                m.name,
                m.events,
                m.events_per_sec()
            );
        }
        println!("perf_core --smoke: all {} scenarios nonzero", results.len());
        return;
    }

    if !json_only {
        println!(
            "{:<20} {:>12} {:>10} {:>14}",
            "scenario", "events", "seconds", "events/sec"
        );
        for m in &results {
            println!(
                "{:<20} {:>12} {:>10.3} {:>14.0}",
                m.name,
                m.events,
                m.seconds,
                m.events_per_sec()
            );
        }
        println!();
    }
    println!("{}", render_json(&results, jobs, reps));
}
