//! perf_core — events-per-second benchmark of the discrete-event hot
//! path (the PR 5 perf baseline).
//!
//! Runs the scheduler engine across the gang-policy spectrum
//! (`Off` / `SuspendAll` / `Partial`) on both **closed** job streams
//! and **open Poisson streams**, plus one scenario shaped exactly like
//! the `ext_open_stream` bench (W=16, λ=0.02, 4×60 jobs, checkpoint
//! eviction). For every scenario it reports executed calendar events,
//! wall time, and events/sec via [`SchedConfig::run_counted`].
//!
//! Usage:
//!
//! * `perf_core` — full measurement, human table + JSON block on
//!   stdout (the JSON is what `BENCH_core.json` records);
//! * `perf_core --json` — JSON only;
//! * `perf_core --smoke` — small check-mode run for CI: counts events,
//!   asserts nonzero throughput on every scenario, and (release builds
//!   only) asserts untraced throughput stays within a generous floor
//!   of the `BENCH_core.json` baseline — the guard that the `NoTrace`
//!   flight-recorder hooks really do compile away;
//! * `perf_core --profile` — run each scenario once under a
//!   profiling-only tracer and print per-event-class host-time
//!   attribution as JSON;
//! * `perf_core --trace-json` — measure the full `FlightRecorder`'s
//!   overhead vs the untraced engine (the JSON `BENCH_trace.json`
//!   records).
//!
//! Events/sec is the engine's honest denominator: cancelled calendar
//! entries skipped at pop time are not counted, only events whose
//! handler ran.

// A throughput benchmark exists to read the wall clock.
#![allow(clippy::disallowed_methods)]

use nds_cluster::owner::OwnerWorkload;
use nds_core::sim::{poisson, JobShape, Workload};
use nds_sched::{
    EventClass, EvictionPolicy, FlightRecorder, GangPolicy, JobSpec, Profiler, SchedConfig,
    SchedTracer,
};
use std::time::Instant;

const SEED: u64 = 0xC0DE;

/// Mirror of `BENCH_core.json`'s `after_events_per_sec` column — the
/// PR 5 release-build baseline the `--smoke` guard floors against.
const BASELINE_EVENTS_PER_SEC: [(&str, f64); 8] = [
    ("closed_off", 11_668_205.0),
    ("closed_suspend_all", 7_759_978.0),
    ("closed_partial", 4_318_230.0),
    ("open_off", 7_878_027.0),
    ("open_suspend_all", 7_649_933.0),
    ("open_partial", 5_586_689.0),
    ("ext_open_stream", 9_908_896.0),
    ("ext_open_stream_hot", 13_699_461.0),
];

/// The smoke guard's floor as a fraction of the recorded baseline —
/// deliberately generous (smoke runs a small workload on a possibly
/// noisy shared machine); it exists to catch order-of-magnitude
/// regressions such as tracing hooks surviving monomorphization, not
/// to benchmark.
const SMOKE_FLOOR_FRAC: f64 = 0.10;

/// A [`SchedTracer`] that only attributes host time per event class —
/// no record buffering, no state sampling — so `--profile` measures
/// handler cost, not recorder cost.
#[derive(Default)]
struct ProfileOnly(Profiler);

impl SchedTracer for ProfileOnly {
    #[inline]
    fn handled(&mut self, _now: f64, class: EventClass, nanos: u64) {
        self.0.observe(class, nanos);
    }

    /// Skip the per-event state gather: this tracer never looks at it.
    #[inline]
    fn wants_state(&self, _now: f64) -> bool {
        false
    }
}

struct ScenarioSpec {
    name: &'static str,
    workstations: u32,
    utilization: f64,
    tasks: u32,
    task_demand: f64,
    /// `Some(rate)` for an open Poisson stream, `None` for a closed
    /// stream with a fixed inter-arrival gap.
    open_rate: Option<f64>,
    gang: GangPolicy,
    eviction: EvictionPolicy,
}

struct Measurement {
    name: &'static str,
    events: u64,
    seconds: f64,
    best_events_per_sec: f64,
}

impl Measurement {
    /// Best observed per-replication throughput. Each replication is
    /// timed on its own and the fastest wins, which filters scheduler
    /// noise on shared machines (the standard min-time methodology).
    fn events_per_sec(&self) -> f64 {
        self.best_events_per_sec
    }
}

fn scenarios() -> Vec<ScenarioSpec> {
    let ckpt = EvictionPolicy::Checkpoint {
        interval: 30.0,
        overhead: 1.0,
    };
    let grid = |name, open_rate, gang, eviction| ScenarioSpec {
        name,
        workstations: 32,
        utilization: 0.15,
        tasks: 8,
        task_demand: 25.0,
        open_rate,
        gang,
        eviction,
    };
    vec![
        grid("closed_off", None, GangPolicy::Off, ckpt),
        grid(
            "closed_suspend_all",
            None,
            GangPolicy::SuspendAll,
            EvictionPolicy::SuspendResume,
        ),
        grid(
            "closed_partial",
            None,
            GangPolicy::Partial { min_running: 4 },
            EvictionPolicy::SuspendResume,
        ),
        grid("open_off", Some(0.05), GangPolicy::Off, ckpt),
        grid(
            "open_suspend_all",
            Some(0.05),
            GangPolicy::SuspendAll,
            EvictionPolicy::SuspendResume,
        ),
        grid(
            "open_partial",
            Some(0.05),
            GangPolicy::Partial { min_running: 4 },
            EvictionPolicy::SuspendResume,
        ),
        // The headline rows: the `ext_open_stream` bench's exact shape
        // (W=16, U=0.10, 4x60 jobs, checkpoint eviction) at two points
        // of that bin's rate sweep — its base rate λ=0.02, where owner
        // think/use cycles dominate the event mix, and the sweep's top
        // rate λ=0.05, where the queue stays busy and the
        // SegmentEnd→dispatch cycle does.
        ScenarioSpec {
            name: "ext_open_stream",
            workstations: 16,
            utilization: 0.10,
            tasks: 4,
            task_demand: 60.0,
            open_rate: Some(0.02),
            gang: GangPolicy::Off,
            eviction: ckpt,
        },
        ScenarioSpec {
            name: "ext_open_stream_hot",
            workstations: 16,
            utilization: 0.10,
            tasks: 4,
            task_demand: 60.0,
            open_rate: Some(0.05),
            gang: GangPolicy::Off,
            eviction: ckpt,
        },
    ]
}

fn jobs_for(spec: &ScenarioSpec, jobs: usize, replication: u64) -> Vec<JobSpec> {
    match spec.open_rate {
        Some(rate) => poisson(rate, JobShape::new(spec.tasks, spec.task_demand))
            .jobs(jobs)
            .warmup(0)
            .generate(SEED, replication)
            .expect("valid open workload"),
        // Closed stream: fixed gap sized so the queue stays busy
        // without growing unboundedly.
        None => JobSpec::stream(jobs as u32, spec.tasks, spec.task_demand, 8.0),
    }
}

fn measure(spec: &ScenarioSpec, jobs: usize, reps: u64) -> Measurement {
    let owner = OwnerWorkload::continuous_exponential(10.0, spec.utilization)
        .expect("valid owner utilization");
    let mut events = 0u64;
    let mut seconds = 0.0f64;
    let mut best = 0.0f64;
    for rep in 0..reps {
        let mut cfg =
            SchedConfig::homogeneous(spec.workstations, &owner, jobs_for(spec, jobs, rep));
        cfg.gang = spec.gang;
        cfg.eviction = spec.eviction;
        cfg.seed = SEED;
        cfg.replication = rep;
        cfg.max_events = 200_000_000;
        let start = Instant::now();
        let (metrics, ran) = cfg.run_counted().expect("scenario completes");
        let elapsed = start.elapsed().as_secs_f64();
        seconds += elapsed;
        events += ran;
        if elapsed > 0.0 {
            best = best.max(ran as f64 / elapsed);
        }
        assert!(
            metrics.is_consistent(),
            "{}: work conservation violated",
            spec.name
        );
    }
    Measurement {
        name: spec.name,
        events,
        seconds,
        best_events_per_sec: best,
    }
}

/// Which recording tier [`measure_traced`] pays for.
#[derive(Clone, Copy)]
enum Tier {
    /// Everything on: record buffer + metrics registry + profiler —
    /// the honest worst case for tracing overhead.
    Full,
    /// [`FlightRecorder::cheap`]: lifecycle-only record filter,
    /// grid-throttled state samples, host profiling off. Counters and
    /// quantile sketches stay exact.
    Cheap,
}

/// Like [`measure`], but runs every replication under the
/// [`FlightRecorder`] at the given tier.
fn measure_traced(spec: &ScenarioSpec, jobs: usize, reps: u64, tier: Tier) -> Measurement {
    let owner = OwnerWorkload::continuous_exponential(10.0, spec.utilization)
        .expect("valid owner utilization");
    let mut events = 0u64;
    let mut seconds = 0.0f64;
    let mut best = 0.0f64;
    for rep in 0..reps {
        let mut cfg =
            SchedConfig::homogeneous(spec.workstations, &owner, jobs_for(spec, jobs, rep));
        cfg.gang = spec.gang;
        cfg.eviction = spec.eviction;
        cfg.seed = SEED;
        cfg.replication = rep;
        cfg.max_events = 200_000_000;
        let w = spec.workstations as usize;
        let mut recorder = match tier {
            Tier::Full => FlightRecorder::new(w, 100.0),
            Tier::Cheap => FlightRecorder::cheap(w, 100.0),
        };
        let start = Instant::now();
        let (metrics, ran) = cfg.run_traced(&mut recorder).expect("scenario completes");
        let elapsed = start.elapsed().as_secs_f64();
        recorder.finish(metrics.makespan);
        seconds += elapsed;
        events += ran;
        if elapsed > 0.0 {
            best = best.max(ran as f64 / elapsed);
        }
        assert!(
            metrics.is_consistent(),
            "{}: work conservation violated",
            spec.name
        );
    }
    Measurement {
        name: spec.name,
        events,
        seconds,
        best_events_per_sec: best,
    }
}

/// Run each scenario once under [`ProfileOnly`] and return the
/// per-event-class JSON blocks.
fn profile_all(jobs: usize) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"benchmark\": \"perf_core --profile\",\n  \"jobs_per_run\": {jobs},\n  \"note\": \"host nanoseconds per SchedEvent class under a profiling-only tracer (no record buffering)\",\n  \"scenarios\": [\n"
    ));
    let specs = scenarios();
    for (i, spec) in specs.iter().enumerate() {
        let owner = OwnerWorkload::continuous_exponential(10.0, spec.utilization)
            .expect("valid owner utilization");
        let mut cfg = SchedConfig::homogeneous(spec.workstations, &owner, jobs_for(spec, jobs, 0));
        cfg.gang = spec.gang;
        cfg.eviction = spec.eviction;
        cfg.seed = SEED;
        cfg.max_events = 200_000_000;
        let mut tracer = ProfileOnly::default();
        let (metrics, ran) = cfg.run_traced(&mut tracer).expect("scenario completes");
        assert!(metrics.is_consistent(), "{}: inconsistent", spec.name);
        assert_eq!(
            tracer.0.total_count(),
            ran,
            "{}: profiler count mismatch",
            spec.name
        );
        let comma = if i + 1 == specs.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"events\": {ran}, \"profile\": {}}}{comma}\n",
            spec.name,
            tracer.0.to_json()
        ));
    }
    out.push_str("  ]\n}");
    out
}

/// Measure untraced vs cheap-tier vs full-recorder throughput per
/// scenario — the JSON that `BENCH_trace.json` records. The three
/// tiers are measured back to back per scenario (interleaved, not
/// batched) so machine drift hits all of them alike.
fn trace_overhead_json(jobs: usize, reps: u64) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"benchmark\": \"perf_core --trace-json\",\n  \"jobs_per_run\": {jobs},\n  \"replications\": {reps},\n  \"note\": \"untraced = NoTrace (zero-cost path); cheap = FlightRecorder::cheap (lifecycle records, grid-throttled state, profiling off; counters and sketches exact); traced = full FlightRecorder (record buffer + metrics registry + profiler); best_events_per_sec per min-time methodology\",\n  \"scenarios\": [\n"
    ));
    let specs = scenarios();
    for (i, spec) in specs.iter().enumerate() {
        // Round-robin the tiers so a slow stretch on a shared machine
        // penalizes all three alike, then keep each tier's best round.
        let mut events = 0;
        let (mut plain, mut cheap, mut traced) = (0.0f64, 0.0f64, 0.0f64);
        for _round in 0..reps {
            let p = measure(spec, jobs, 1);
            events = p.events;
            plain = plain.max(p.events_per_sec());
            let c = measure_traced(spec, jobs, 1, Tier::Cheap);
            cheap = cheap.max(c.events_per_sec());
            let t = measure_traced(spec, jobs, 1, Tier::Full);
            traced = traced.max(t.events_per_sec());
        }
        let ratio_of = |eps: f64| {
            if eps > 0.0 {
                plain / eps
            } else {
                f64::INFINITY
            }
        };
        let comma = if i + 1 == specs.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"events\": {events}, \"untraced_events_per_sec\": {plain:.0}, \"cheap_events_per_sec\": {cheap:.0}, \"cheap_overhead_ratio\": {:.3}, \"traced_events_per_sec\": {traced:.0}, \"overhead_ratio\": {:.3}}}{comma}\n",
            spec.name,
            ratio_of(cheap),
            ratio_of(traced)
        ));
    }
    out.push_str("  ]\n}");
    out
}

fn baseline_for(name: &str) -> Option<f64> {
    BASELINE_EVENTS_PER_SEC
        .iter()
        .find(|(n, _)| *n == name)
        .map(|&(_, eps)| eps)
}

fn render_json(results: &[Measurement], jobs: usize, reps: u64) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"jobs_per_run\": {jobs},\n  \"replications\": {reps},\n  \"note\": \"events and seconds are totals across replications; best_events_per_sec is the fastest single replication (min-time methodology)\",\n  \"scenarios\": [\n"
    ));
    for (i, m) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"events\": {}, \"seconds\": {:.4}, \"best_events_per_sec\": {:.0}}}{comma}\n",
            m.name,
            m.events,
            m.seconds,
            m.events_per_sec()
        ));
    }
    out.push_str("  ]\n}");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_only = args.iter().any(|a| a == "--json");
    let profile = args.iter().any(|a| a == "--profile");
    let trace_json = args.iter().any(|a| a == "--trace-json");

    if profile {
        println!("{}", profile_all(2_000));
        return;
    }
    if trace_json {
        println!("{}", trace_overhead_json(2_000, 5));
        return;
    }
    let (jobs, reps) = if smoke { (200, 3) } else { (8_000, 5) };
    let results: Vec<Measurement> = scenarios()
        .iter()
        .map(|spec| measure(spec, jobs, reps))
        .collect();

    if smoke {
        // Debug builds are an order of magnitude off the release
        // baseline, so the floor guard only arms in release.
        let guard = !cfg!(debug_assertions);
        for m in &results {
            assert!(m.events > 0, "{}: no events executed", m.name);
            assert!(m.events_per_sec() > 0.0, "{}: zero throughput", m.name);
            let floor = baseline_for(m.name).map_or(0.0, |eps| eps * SMOKE_FLOOR_FRAC);
            if guard {
                assert!(
                    m.events_per_sec() >= floor,
                    "{}: {:.0} events/sec below the regression floor {:.0} \
                     ({}x the BENCH_core.json baseline)",
                    m.name,
                    m.events_per_sec(),
                    floor,
                    SMOKE_FLOOR_FRAC
                );
            }
            println!(
                "smoke {:<20} {:>9} events  {:>12.0} events/sec  (floor {:>12.0}{})",
                m.name,
                m.events,
                m.events_per_sec(),
                floor,
                if guard { "" } else { ", unarmed: debug build" }
            );
        }
        println!(
            "perf_core --smoke: all {} scenarios nonzero{}",
            results.len(),
            if guard {
                " and above the baseline floor"
            } else {
                ""
            }
        );
        return;
    }

    if !json_only {
        println!(
            "{:<20} {:>12} {:>10} {:>14}",
            "scenario", "events", "seconds", "events/sec"
        );
        for m in &results {
            println!(
                "{:<20} {:>12} {:>10.3} {:>14.0}",
                m.name,
                m.events,
                m.seconds,
                m.events_per_sec()
            );
        }
        println!();
    }
    println!("{}", render_json(&results, jobs, reps));
}
