//! Figure 8: weighted efficiency vs task ratio for several pool sizes,
//! owner utilization 10%.
use nds_bench::figures::task_ratio_by_size_figure;

fn main() {
    print!("{}", task_ratio_by_size_figure().to_table(4).render());
}
