//! V1/C1 experiment helpers: simulation-vs-analysis agreement and the
//! required-task-ratio table.

use nds_core::comparison::{ComparisonRow, ValidationSuite};
use nds_core::report::Table;
use nds_model::params::OwnerParams;
use nds_model::solver::required_task_ratio;

/// V1: rerun the paper's §2.2 validation over Figure 1 points.
///
/// `quick` uses 10×100 samples per point (tests); otherwise the paper's
/// 20×1000.
pub fn sim_vs_analysis(quick: bool, seed: u64) -> Vec<ComparisonRow> {
    let suite = if quick {
        ValidationSuite::quick(seed)
    } else {
        ValidationSuite::paper(seed)
    };
    let workstations = [1u32, 10, 25, 50, 100];
    let utilizations = [0.01, 0.05, 0.10, 0.20];
    suite
        .validate_sweep(1000.0, &workstations, &utilizations)
        .expect("valid sweep")
}

/// Render V1 rows as a table.
pub fn sim_vs_analysis_table(rows: &[ComparisonRow]) -> Table {
    let mut table = Table::new("V1: simulation vs analysis, J = 1000, O = 10").headers([
        "U",
        "W",
        "T",
        "analytic E_j",
        "simulated",
        "CI half-width",
        "rel err",
        "agrees",
    ]);
    for r in rows {
        table.row([
            format!("{:.2}", r.utilization),
            r.workstations.to_string(),
            r.task_demand.to_string(),
            format!("{:.3}", r.analytic),
            format!("{:.3}", r.outcome.report.mean),
            format!("{:.3}", r.outcome.report.half_width),
            format!("{:.4}", r.outcome.relative_error),
            if r.outcome.agrees() { "yes" } else { "NO" }.to_string(),
        ]);
    }
    table
}

/// C1: the required task ratio for 80% weighted efficiency across
/// utilizations and pool sizes (the paper's §5 thresholds live in the
/// `W = 100` column).
pub fn required_ratio_table() -> Table {
    let utilizations = [0.01, 0.05, 0.10, 0.20];
    let pools = [2u32, 8, 20, 60, 100];
    let mut headers = vec!["U".to_string()];
    headers.extend(pools.iter().map(|w| format!("W={w}")));
    let mut table =
        Table::new("C1: task ratio required for 80% weighted efficiency").headers(headers);
    for &u in &utilizations {
        let owner = OwnerParams::from_utilization(10.0, u).expect("valid");
        let mut row = vec![format!("{u:.2}")];
        for &w in &pools {
            let ratio = required_task_ratio(w, owner, 0.80).expect("solvable");
            row.push(format!("{ratio:.1}"));
        }
        table.row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_v1_all_points_agree() {
        let rows = sim_vs_analysis(true, 2024);
        assert_eq!(rows.len(), 20);
        for r in &rows {
            // With 1000 samples the quick run should land within 3%.
            assert!(
                r.outcome.relative_error < 0.03,
                "W={} U={} rel err {}",
                r.workstations,
                r.utilization,
                r.outcome.relative_error
            );
        }
        let t = sim_vs_analysis_table(&rows);
        assert_eq!(t.len(), 20);
    }

    #[test]
    fn required_ratio_table_shape() {
        let t = required_ratio_table();
        assert_eq!(t.len(), 4);
        let text = t.render();
        assert!(text.contains("W=100"));
    }
}
