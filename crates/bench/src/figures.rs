//! One generator per figure of the paper.
//!
//! Parameters come from [`nds_core::scenario::Scenario`] so every
//! consumer (binary, bench, test, EXPERIMENTS.md) sees the same
//! experiment definitions.
//!
//! Every figure's sweep is sharded through [`nds_core::sweep`] as one
//! flat (curve × point) grid — not one `parallel_map` per curve with a
//! sequential outer loop — so `fig01`–`fig11` regeneration saturates
//! the machine regardless of how many curves a figure has. Results
//! are spliced back in input order, so the rendered tables are
//! byte-identical to the sequential path.

use crate::series::FigureSeries;
use nds_core::scenario::{Scenario, OWNER_DEMAND};
use nds_core::sweep::parallel_map;

/// Evaluate `f` over the full `curves × xs` grid through one
/// [`parallel_map`] fan-out, returning one `Vec<f64>` per curve in
/// input order.
fn grid_map<C: Sync, X: Sync>(
    curves: &[C],
    xs: &[X],
    threads: usize,
    f: impl Fn(&C, &X) -> f64 + Sync,
) -> Vec<Vec<f64>> {
    let pairs: Vec<(usize, usize)> = (0..curves.len())
        .flat_map(|c| (0..xs.len()).map(move |x| (c, x)))
        .collect();
    let flat = parallel_map(&pairs, threads, |&(c, x)| f(&curves[c], &xs[x]));
    flat.chunks(xs.len()).map(<[f64]>::to_vec).collect()
}
use nds_model::metrics::{evaluate, Metrics};
use nds_model::params::{ModelInputs, OwnerParams};
use nds_model::scaled::scaled_sweep;
use nds_pvm::harness::ValidationHarness;

/// Which §3.1 metric a fixed-size figure plots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FixedSizeMetric {
    /// Figure 1 / (5 with J=10K): `J / E_j`.
    Speedup,
    /// Figure 2: `J / (W·E_j)`.
    Efficiency,
    /// Figures 3 and 5: `J / ((1-U)·E_j)`.
    WeightedSpeedup,
    /// Figures 4 and 6: `J / (W·(1-U)·E_j)`.
    WeightedEfficiency,
}

impl FixedSizeMetric {
    fn extract(&self, m: &Metrics) -> f64 {
        match self {
            FixedSizeMetric::Speedup => m.speedup,
            FixedSizeMetric::Efficiency => m.efficiency,
            FixedSizeMetric::WeightedSpeedup => m.weighted_speedup,
            FixedSizeMetric::WeightedEfficiency => m.weighted_efficiency,
        }
    }

    fn label(&self) -> &'static str {
        match self {
            FixedSizeMetric::Speedup => "speedup",
            FixedSizeMetric::Efficiency => "efficiency",
            FixedSizeMetric::WeightedSpeedup => "weighted speedup",
            FixedSizeMetric::WeightedEfficiency => "weighted efficiency",
        }
    }
}

/// Figures 1–6: the chosen metric vs `W` for each utilization, with a
/// "perfect" reference curve on the speedup variants.
pub fn fixed_size_figure(job_demand: f64, metric: FixedSizeMetric) -> FigureSeries {
    let scenario = if job_demand >= 10_000.0 {
        Scenario::FixedSize10K
    } else {
        Scenario::FixedSize1K
    };
    let ws = scenario.workstations();
    let utils = scenario.utilizations();
    let x: Vec<f64> = ws.iter().map(|&w| f64::from(w)).collect();
    let mut curves = Vec::new();
    if matches!(
        metric,
        FixedSizeMetric::Speedup | FixedSizeMetric::WeightedSpeedup
    ) {
        curves.push(("perfect".to_string(), x.clone()));
    }
    let grid = grid_map(&utils, &ws, 8, |&u, &w| {
        let inputs = ModelInputs::from_utilization(job_demand, w, OWNER_DEMAND, u)
            .expect("scenario parameters are valid");
        metric.extract(&evaluate(&inputs))
    });
    for (&u, ys) in utils.iter().zip(grid) {
        curves.push((format!("util={u}"), ys));
    }
    FigureSeries {
        title: format!("{} vs workstations, J = {job_demand}", metric.label()),
        x_label: "W".into(),
        x,
        curves,
    }
}

/// Figure 7: weighted efficiency vs task ratio at `W = 60` for each
/// utilization.
pub fn task_ratio_figure_w60() -> FigureSeries {
    let scenario = Scenario::TaskRatioAt60;
    let ratios = scenario.task_ratios();
    let utils = scenario.utilizations();
    let grid = grid_map(&utils, &ratios, 8, |&u, &r| {
        let t = r * OWNER_DEMAND;
        let inputs =
            ModelInputs::from_utilization(t * 60.0, 60, OWNER_DEMAND, u).expect("valid parameters");
        evaluate(&inputs).weighted_efficiency
    });
    let curves = utils
        .iter()
        .zip(grid)
        .map(|(&u, ys)| (format!("util={u}"), ys))
        .collect();
    FigureSeries {
        title: "Figure 7: weighted efficiency vs task ratio, W = 60".into(),
        x_label: "task ratio".into(),
        x: ratios,
        curves,
    }
}

/// Figure 8: weighted efficiency vs task ratio at `U = 10%` for each
/// pool size.
pub fn task_ratio_by_size_figure() -> FigureSeries {
    let scenario = Scenario::TaskRatioBySize;
    let ratios = scenario.task_ratios();
    let ws = scenario.workstations();
    let grid = grid_map(&ws, &ratios, 8, |&w, &r| {
        let t = r * OWNER_DEMAND;
        let inputs = ModelInputs::from_utilization(t * f64::from(w), w, OWNER_DEMAND, 0.10)
            .expect("valid parameters");
        evaluate(&inputs).weighted_efficiency
    });
    let curves = ws
        .iter()
        .zip(grid)
        .map(|(&w, ys)| (format!("numProc={w}"), ys))
        .collect();
    FigureSeries {
        title: "Figure 8: weighted efficiency vs task ratio, U = 10%".into(),
        x_label: "task ratio".into(),
        x: ratios,
        curves,
    }
}

/// Figure 9: scaled-problem job execution time vs `W` (`J = 100·W`).
pub fn scaled_figure() -> FigureSeries {
    let scenario = Scenario::Scaled;
    let ws = scenario.workstations();
    let t0 = scenario.per_node_demand().expect("scaled scenario has T0");
    let x: Vec<f64> = ws.iter().map(|&w| f64::from(w)).collect();
    let utils = scenario.utilizations();
    let grid = grid_map(&utils, &ws, 8, |&u, &w| {
        let owner = OwnerParams::from_utilization(OWNER_DEMAND, u).expect("valid");
        scaled_sweep(t0, &[w], owner).expect("valid sweep")[0].expected_job_time
    });
    let curves = utils
        .iter()
        .zip(grid)
        .map(|(&u, ys)| (format!("util={u}"), ys))
        .collect();
    FigureSeries {
        title: "Figure 9: scaled problem (J = 100·W) job time vs W".into(),
        x_label: "W".into(),
        x,
        curves,
    }
}

/// Figure 10: measured (simulated PVM) and analytic max task execution
/// time vs `W` for each demand. `replications` tunes run cost
/// (paper: 10).
pub fn validation_time_figure(replications: u32) -> FigureSeries {
    let scenario = Scenario::PvmValidation;
    let ws = scenario.workstations();
    let demands = scenario.demand_minutes();
    let utilization = scenario.utilizations()[0];
    let harness = ValidationHarness {
        utilization,
        owner_demand: OWNER_DEMAND,
        replications,
        seed: 1993,
    };
    let x: Vec<f64> = ws.iter().map(|&w| f64::from(w)).collect();
    let mut curves = Vec::new();
    let measured = grid_map(&demands, &ws, 6, |&m, &w| {
        harness
            .run_point(w, m)
            .expect("valid point")
            .mean_max_task_time
    });
    for (&m, points) in demands.iter().zip(measured) {
        curves.push((format!("measured {m}"), points));
    }
    let analytic = grid_map(&demands, &ws, 8, |&m, &w| {
        let owner = OwnerParams::from_utilization(OWNER_DEMAND, utilization).expect("valid");
        let t = f64::from(m) * 60.0 / f64::from(w);
        nds_model::expectation::expected_job_time(t, w, owner)
    });
    for (&m, ys) in demands.iter().zip(analytic) {
        curves.push((format!("analytic {m}"), ys));
    }
    FigureSeries {
        title: format!(
            "Figure 10: max task execution time vs W (U = {utilization}, {replications} reps)"
        ),
        x_label: "W".into(),
        x,
        curves,
    }
}

/// Figure 11: measured speedup (ratio of mean max task times) vs `W`
/// per demand, plus the perfect line.
pub fn validation_speedup_figure(replications: u32) -> FigureSeries {
    let scenario = Scenario::PvmValidation;
    let ws = scenario.workstations();
    let demands = scenario.demand_minutes();
    let harness = ValidationHarness {
        utilization: scenario.utilizations()[0],
        owner_demand: OWNER_DEMAND,
        replications,
        seed: 1993,
    };
    let x: Vec<f64> = ws.iter().map(|&w| f64::from(w)).collect();
    let mut curves = vec![("perfect".to_string(), x.clone())];
    let measured = grid_map(&demands, &ws, 6, |&m, &w| {
        harness
            .run_point(w, m)
            .expect("valid point")
            .mean_max_task_time
    });
    for (&m, times) in demands.iter().zip(measured) {
        let base = times[0];
        curves.push((
            format!("demand {m}"),
            times.iter().map(|&t| base / t).collect(),
        ));
    }
    FigureSeries {
        title: format!("Figure 11: measured speedup vs W ({replications} reps)"),
        x_label: "W".into(),
        x,
        curves,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_shape_and_anchors() {
        let f = fixed_size_figure(1000.0, FixedSizeMetric::Speedup);
        assert!(f.is_consistent());
        assert_eq!(f.curves.len(), 5, "perfect + 4 utilizations");
        let perfect = f.curve("perfect").unwrap();
        let u1 = f.curve("util=0.01").unwrap();
        let last = f.x.len() - 1;
        assert_eq!(perfect[last], 100.0);
        // §3.1: ~61% of optimal at 100 nodes, 1% util.
        let frac = u1[last] / 100.0;
        assert!((frac - 0.61).abs() < 0.03, "frac {frac}");
    }

    #[test]
    fn fig4_weighted_efficiency_bounds() {
        let f = fixed_size_figure(1000.0, FixedSizeMetric::WeightedEfficiency);
        for (_, ys) in &f.curves {
            for &y in ys {
                assert!(y > 0.0 && y <= 1.0 + 1e-9);
            }
        }
    }

    #[test]
    fn fig5_higher_demand_beats_fig3() {
        let f3 = fixed_size_figure(1000.0, FixedSizeMetric::WeightedSpeedup);
        let f5 = fixed_size_figure(10_000.0, FixedSizeMetric::WeightedSpeedup);
        let last = f3.x.len() - 1;
        let w3 = f3.curve("util=0.1").unwrap()[last];
        let w5 = f5.curve("util=0.1").unwrap()[last];
        assert!(w5 > w3, "10K {w5} must beat 1K {w3}");
    }

    #[test]
    fn fig7_monotone_in_ratio() {
        let f = task_ratio_figure_w60();
        assert!(f.is_consistent());
        for (name, ys) in &f.curves {
            for pair in ys.windows(2) {
                assert!(pair[1] >= pair[0] - 1e-9, "curve {name} not monotone");
            }
        }
    }

    #[test]
    fn fig8_larger_pools_need_larger_ratios() {
        let f = task_ratio_by_size_figure();
        let small = f.curve("numProc=2").unwrap();
        let large = f.curve("numProc=100").unwrap();
        // At every ratio the small pool achieves at least the efficiency
        // of the large pool.
        for (s, l) in small.iter().zip(large) {
            assert!(s >= l);
        }
    }

    #[test]
    fn fig9_anchors() {
        let f = scaled_figure();
        let last = f.x.len() - 1;
        let u10 = f.curve("util=0.1").unwrap();
        assert!((u10[last] - 144.4).abs() < 1.0, "got {}", u10[last]);
        let u20 = f.curve("util=0.2").unwrap();
        assert!((u20[last] - 171.4).abs() < 1.0, "got {}", u20[last]);
    }

    #[test]
    fn fig10_measured_tracks_analytic() {
        let f = validation_time_figure(5);
        assert!(f.is_consistent());
        let measured = f.curve("measured 16").unwrap();
        let analytic = f.curve("analytic 16").unwrap();
        // The measured curve uses exponential owner demands (CV^2 = 1)
        // while the analytic model assumes deterministic demands, so the
        // simulation runs slightly hot — just like the paper's measured
        // points sit near (and above) its model curve. Allow 25% per
        // point at 5 replications, and require close aggregate agreement.
        let mut rel_sum = 0.0;
        for (i, (m, a)) in measured.iter().zip(analytic).enumerate() {
            let rel = (m - a).abs() / a;
            assert!(rel < 0.25, "W={} measured {m} vs analytic {a}", i + 1);
            rel_sum += rel;
        }
        assert!(
            rel_sum / (measured.len() as f64) < 0.10,
            "mean relative gap too large: {}",
            rel_sum / measured.len() as f64
        );
    }

    #[test]
    fn fig11_speedup_shape() {
        let f = validation_speedup_figure(3);
        let d16 = f.curve("demand 16").unwrap();
        assert!((d16[0] - 1.0).abs() < 1e-9);
        assert!(d16[11] > 8.0, "W=12 speedup {} too low", d16[11]);
    }
}
