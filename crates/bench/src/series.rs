//! Figure series: x values plus named curves, renderable as a table.

use nds_core::report::Table;

/// Data behind one figure: an x axis and one or more named curves.
#[derive(Debug, Clone)]
pub struct FigureSeries {
    /// Figure title (e.g. `"Figure 1: Speedup, J = 1000"`).
    pub title: String,
    /// x-axis label.
    pub x_label: String,
    /// x values.
    pub x: Vec<f64>,
    /// `(curve name, y values)` — each the same length as `x`.
    pub curves: Vec<(String, Vec<f64>)>,
}

impl FigureSeries {
    /// Validate internal consistency (every curve matches the x length).
    pub fn is_consistent(&self) -> bool {
        self.curves.iter().all(|(_, ys)| ys.len() == self.x.len())
    }

    /// Render as an aligned text table with the given y precision.
    pub fn to_table(&self, precision: usize) -> Table {
        let mut headers = vec![self.x_label.clone()];
        headers.extend(self.curves.iter().map(|(name, _)| name.clone()));
        let mut table = Table::new(self.title.clone()).headers(headers);
        for (i, &x) in self.x.iter().enumerate() {
            let mut row = vec![trim_number(x)];
            for (_, ys) in &self.curves {
                row.push(format!("{:.*}", precision, ys[i]));
            }
            table.row(row);
        }
        table
    }

    /// Look up a curve by name.
    pub fn curve(&self, name: &str) -> Option<&[f64]> {
        self.curves
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, ys)| ys.as_slice())
    }
}

fn trim_number(x: f64) -> String {
    if (x - x.round()).abs() < 1e-9 {
        format!("{}", x.round() as i64)
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FigureSeries {
        FigureSeries {
            title: "t".into(),
            x_label: "W".into(),
            x: vec![1.0, 2.0],
            curves: vec![("a".into(), vec![0.5, 0.25]), ("b".into(), vec![1.0, 2.0])],
        }
    }

    #[test]
    fn consistency_check() {
        let mut s = sample();
        assert!(s.is_consistent());
        s.curves[0].1.pop();
        assert!(!s.is_consistent());
    }

    #[test]
    fn renders_rows_per_x() {
        let s = sample();
        let t = s.to_table(3);
        assert_eq!(t.len(), 2);
        let text = t.render();
        assert!(text.contains("0.500"));
        assert!(text.contains("W"));
    }

    #[test]
    fn curve_lookup() {
        let s = sample();
        assert_eq!(s.curve("b"), Some(&[1.0, 2.0][..]));
        assert!(s.curve("zzz").is_none());
    }

    #[test]
    fn integer_x_rendered_clean() {
        assert_eq!(trim_number(5.0), "5");
        assert_eq!(trim_number(2.5), "2.50");
    }
}
