//! # nds-bench — figure regeneration and benchmark harness
//!
//! One generator per figure of the paper (see [`figures`]); each has a
//! binary (`cargo run -p nds-bench --bin fig01_speedup`, ...) that
//! prints the figure's series as an aligned table, and a Criterion
//! bench group that measures regeneration cost. The extension
//! experiments (`ext_*` binaries) cover the paper's stated future work.

#![forbid(unsafe_code)]

pub mod figures;
pub mod series;
pub mod validation;

pub use figures::FixedSizeMetric;
pub use series::FigureSeries;
