/root/repo/target/debug/examples/quickstart-39577aacdfd286c5.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-39577aacdfd286c5: examples/quickstart.rs

examples/quickstart.rs:
