/root/repo/target/debug/examples/pvm_validation-1d4d0101fda2c898.d: examples/pvm_validation.rs

/root/repo/target/debug/examples/pvm_validation-1d4d0101fda2c898: examples/pvm_validation.rs

examples/pvm_validation.rs:
