/root/repo/target/debug/examples/quickstart-c525a77a8cc18f13.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-c525a77a8cc18f13.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
