/root/repo/target/debug/examples/fixed_size_speedup-7ee41e389e472bbd.d: examples/fixed_size_speedup.rs

/root/repo/target/debug/examples/fixed_size_speedup-7ee41e389e472bbd: examples/fixed_size_speedup.rs

examples/fixed_size_speedup.rs:
