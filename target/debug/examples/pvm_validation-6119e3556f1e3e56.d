/root/repo/target/debug/examples/pvm_validation-6119e3556f1e3e56.d: examples/pvm_validation.rs Cargo.toml

/root/repo/target/debug/examples/libpvm_validation-6119e3556f1e3e56.rmeta: examples/pvm_validation.rs Cargo.toml

examples/pvm_validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
