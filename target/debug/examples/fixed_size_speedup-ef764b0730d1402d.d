/root/repo/target/debug/examples/fixed_size_speedup-ef764b0730d1402d.d: examples/fixed_size_speedup.rs Cargo.toml

/root/repo/target/debug/examples/libfixed_size_speedup-ef764b0730d1402d.rmeta: examples/fixed_size_speedup.rs Cargo.toml

examples/fixed_size_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
