/root/repo/target/debug/examples/variance_study-97f6d19066d3635e.d: examples/variance_study.rs

/root/repo/target/debug/examples/variance_study-97f6d19066d3635e: examples/variance_study.rs

examples/variance_study.rs:
