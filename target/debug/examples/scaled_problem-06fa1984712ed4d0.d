/root/repo/target/debug/examples/scaled_problem-06fa1984712ed4d0.d: examples/scaled_problem.rs

/root/repo/target/debug/examples/scaled_problem-06fa1984712ed4d0: examples/scaled_problem.rs

examples/scaled_problem.rs:
