/root/repo/target/debug/examples/variance_study-0dcc1776e40698bf.d: examples/variance_study.rs Cargo.toml

/root/repo/target/debug/examples/libvariance_study-0dcc1776e40698bf.rmeta: examples/variance_study.rs Cargo.toml

examples/variance_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
