/root/repo/target/debug/examples/shared_pool-02a04ef576fb57a0.d: examples/shared_pool.rs Cargo.toml

/root/repo/target/debug/examples/libshared_pool-02a04ef576fb57a0.rmeta: examples/shared_pool.rs Cargo.toml

examples/shared_pool.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
