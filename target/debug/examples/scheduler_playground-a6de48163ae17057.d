/root/repo/target/debug/examples/scheduler_playground-a6de48163ae17057.d: examples/scheduler_playground.rs

/root/repo/target/debug/examples/scheduler_playground-a6de48163ae17057: examples/scheduler_playground.rs

examples/scheduler_playground.rs:
