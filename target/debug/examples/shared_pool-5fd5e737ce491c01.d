/root/repo/target/debug/examples/shared_pool-5fd5e737ce491c01.d: examples/shared_pool.rs

/root/repo/target/debug/examples/shared_pool-5fd5e737ce491c01: examples/shared_pool.rs

examples/shared_pool.rs:
