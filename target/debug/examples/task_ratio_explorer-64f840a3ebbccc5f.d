/root/repo/target/debug/examples/task_ratio_explorer-64f840a3ebbccc5f.d: examples/task_ratio_explorer.rs

/root/repo/target/debug/examples/task_ratio_explorer-64f840a3ebbccc5f: examples/task_ratio_explorer.rs

examples/task_ratio_explorer.rs:
