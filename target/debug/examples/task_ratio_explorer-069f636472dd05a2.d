/root/repo/target/debug/examples/task_ratio_explorer-069f636472dd05a2.d: examples/task_ratio_explorer.rs Cargo.toml

/root/repo/target/debug/examples/libtask_ratio_explorer-069f636472dd05a2.rmeta: examples/task_ratio_explorer.rs Cargo.toml

examples/task_ratio_explorer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
