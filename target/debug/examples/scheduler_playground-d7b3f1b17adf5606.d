/root/repo/target/debug/examples/scheduler_playground-d7b3f1b17adf5606.d: examples/scheduler_playground.rs Cargo.toml

/root/repo/target/debug/examples/libscheduler_playground-d7b3f1b17adf5606.rmeta: examples/scheduler_playground.rs Cargo.toml

examples/scheduler_playground.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
