/root/repo/target/debug/examples/scaled_problem-78e2f9e539e68f10.d: examples/scaled_problem.rs Cargo.toml

/root/repo/target/debug/examples/libscaled_problem-78e2f9e539e68f10.rmeta: examples/scaled_problem.rs Cargo.toml

examples/scaled_problem.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
