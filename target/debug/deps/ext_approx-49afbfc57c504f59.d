/root/repo/target/debug/deps/ext_approx-49afbfc57c504f59.d: crates/bench/src/bin/ext_approx.rs Cargo.toml

/root/repo/target/debug/deps/libext_approx-49afbfc57c504f59.rmeta: crates/bench/src/bin/ext_approx.rs Cargo.toml

crates/bench/src/bin/ext_approx.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
