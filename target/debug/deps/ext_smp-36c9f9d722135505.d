/root/repo/target/debug/deps/ext_smp-36c9f9d722135505.d: crates/bench/src/bin/ext_smp.rs

/root/repo/target/debug/deps/ext_smp-36c9f9d722135505: crates/bench/src/bin/ext_smp.rs

crates/bench/src/bin/ext_smp.rs:
