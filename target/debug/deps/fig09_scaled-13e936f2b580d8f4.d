/root/repo/target/debug/deps/fig09_scaled-13e936f2b580d8f4.d: crates/bench/src/bin/fig09_scaled.rs Cargo.toml

/root/repo/target/debug/deps/libfig09_scaled-13e936f2b580d8f4.rmeta: crates/bench/src/bin/fig09_scaled.rs Cargo.toml

crates/bench/src/bin/fig09_scaled.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
