/root/repo/target/debug/deps/nds-1551b9cf7e711fed.d: src/lib.rs

/root/repo/target/debug/deps/libnds-1551b9cf7e711fed.rlib: src/lib.rs

/root/repo/target/debug/deps/libnds-1551b9cf7e711fed.rmeta: src/lib.rs

src/lib.rs:
