/root/repo/target/debug/deps/pvm_end_to_end-01c4c083e674f8e0.d: tests/pvm_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libpvm_end_to_end-01c4c083e674f8e0.rmeta: tests/pvm_end_to_end.rs Cargo.toml

tests/pvm_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
