/root/repo/target/debug/deps/fig07_task_ratio-f58e67cd84e4407a.d: crates/bench/src/bin/fig07_task_ratio.rs Cargo.toml

/root/repo/target/debug/deps/libfig07_task_ratio-f58e67cd84e4407a.rmeta: crates/bench/src/bin/fig07_task_ratio.rs Cargo.toml

crates/bench/src/bin/fig07_task_ratio.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
