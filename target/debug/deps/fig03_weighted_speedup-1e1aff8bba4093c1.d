/root/repo/target/debug/deps/fig03_weighted_speedup-1e1aff8bba4093c1.d: crates/bench/src/bin/fig03_weighted_speedup.rs Cargo.toml

/root/repo/target/debug/deps/libfig03_weighted_speedup-1e1aff8bba4093c1.rmeta: crates/bench/src/bin/fig03_weighted_speedup.rs Cargo.toml

crates/bench/src/bin/fig03_weighted_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
