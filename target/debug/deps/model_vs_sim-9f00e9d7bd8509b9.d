/root/repo/target/debug/deps/model_vs_sim-9f00e9d7bd8509b9.d: tests/model_vs_sim.rs

/root/repo/target/debug/deps/model_vs_sim-9f00e9d7bd8509b9: tests/model_vs_sim.rs

tests/model_vs_sim.rs:
