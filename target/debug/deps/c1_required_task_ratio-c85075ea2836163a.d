/root/repo/target/debug/deps/c1_required_task_ratio-c85075ea2836163a.d: crates/bench/src/bin/c1_required_task_ratio.rs Cargo.toml

/root/repo/target/debug/deps/libc1_required_task_ratio-c85075ea2836163a.rmeta: crates/bench/src/bin/c1_required_task_ratio.rs Cargo.toml

crates/bench/src/bin/c1_required_task_ratio.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
