/root/repo/target/debug/deps/fig01_speedup-50211aad9941320f.d: crates/bench/src/bin/fig01_speedup.rs

/root/repo/target/debug/deps/fig01_speedup-50211aad9941320f: crates/bench/src/bin/fig01_speedup.rs

crates/bench/src/bin/fig01_speedup.rs:
