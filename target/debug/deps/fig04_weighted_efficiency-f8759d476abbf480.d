/root/repo/target/debug/deps/fig04_weighted_efficiency-f8759d476abbf480.d: crates/bench/src/bin/fig04_weighted_efficiency.rs Cargo.toml

/root/repo/target/debug/deps/libfig04_weighted_efficiency-f8759d476abbf480.rmeta: crates/bench/src/bin/fig04_weighted_efficiency.rs Cargo.toml

crates/bench/src/bin/fig04_weighted_efficiency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
