/root/repo/target/debug/deps/figures_shape-6cbeea7016b7a422.d: tests/figures_shape.rs

/root/repo/target/debug/deps/figures_shape-6cbeea7016b7a422: tests/figures_shape.rs

tests/figures_shape.rs:
