/root/repo/target/debug/deps/nds_pvm-64dbbcb057f60bea.d: crates/pvm/src/lib.rs crates/pvm/src/apps.rs crates/pvm/src/apps/local_computation.rs crates/pvm/src/apps/sync_rounds.rs crates/pvm/src/daemon.rs crates/pvm/src/error.rs crates/pvm/src/group.rs crates/pvm/src/harness.rs crates/pvm/src/lan.rs crates/pvm/src/message.rs crates/pvm/src/task.rs crates/pvm/src/vm.rs

/root/repo/target/debug/deps/libnds_pvm-64dbbcb057f60bea.rlib: crates/pvm/src/lib.rs crates/pvm/src/apps.rs crates/pvm/src/apps/local_computation.rs crates/pvm/src/apps/sync_rounds.rs crates/pvm/src/daemon.rs crates/pvm/src/error.rs crates/pvm/src/group.rs crates/pvm/src/harness.rs crates/pvm/src/lan.rs crates/pvm/src/message.rs crates/pvm/src/task.rs crates/pvm/src/vm.rs

/root/repo/target/debug/deps/libnds_pvm-64dbbcb057f60bea.rmeta: crates/pvm/src/lib.rs crates/pvm/src/apps.rs crates/pvm/src/apps/local_computation.rs crates/pvm/src/apps/sync_rounds.rs crates/pvm/src/daemon.rs crates/pvm/src/error.rs crates/pvm/src/group.rs crates/pvm/src/harness.rs crates/pvm/src/lan.rs crates/pvm/src/message.rs crates/pvm/src/task.rs crates/pvm/src/vm.rs

crates/pvm/src/lib.rs:
crates/pvm/src/apps.rs:
crates/pvm/src/apps/local_computation.rs:
crates/pvm/src/apps/sync_rounds.rs:
crates/pvm/src/daemon.rs:
crates/pvm/src/error.rs:
crates/pvm/src/group.rs:
crates/pvm/src/harness.rs:
crates/pvm/src/lan.rs:
crates/pvm/src/message.rs:
crates/pvm/src/task.rs:
crates/pvm/src/vm.rs:
