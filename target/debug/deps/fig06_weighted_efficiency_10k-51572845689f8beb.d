/root/repo/target/debug/deps/fig06_weighted_efficiency_10k-51572845689f8beb.d: crates/bench/src/bin/fig06_weighted_efficiency_10k.rs Cargo.toml

/root/repo/target/debug/deps/libfig06_weighted_efficiency_10k-51572845689f8beb.rmeta: crates/bench/src/bin/fig06_weighted_efficiency_10k.rs Cargo.toml

crates/bench/src/bin/fig06_weighted_efficiency_10k.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
