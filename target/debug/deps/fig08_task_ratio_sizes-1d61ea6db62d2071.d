/root/repo/target/debug/deps/fig08_task_ratio_sizes-1d61ea6db62d2071.d: crates/bench/src/bin/fig08_task_ratio_sizes.rs Cargo.toml

/root/repo/target/debug/deps/libfig08_task_ratio_sizes-1d61ea6db62d2071.rmeta: crates/bench/src/bin/fig08_task_ratio_sizes.rs Cargo.toml

crates/bench/src/bin/fig08_task_ratio_sizes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
