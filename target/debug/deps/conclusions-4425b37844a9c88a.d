/root/repo/target/debug/deps/conclusions-4425b37844a9c88a.d: tests/conclusions.rs Cargo.toml

/root/repo/target/debug/deps/libconclusions-4425b37844a9c88a.rmeta: tests/conclusions.rs Cargo.toml

tests/conclusions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
