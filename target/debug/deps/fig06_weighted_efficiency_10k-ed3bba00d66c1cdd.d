/root/repo/target/debug/deps/fig06_weighted_efficiency_10k-ed3bba00d66c1cdd.d: crates/bench/src/bin/fig06_weighted_efficiency_10k.rs

/root/repo/target/debug/deps/fig06_weighted_efficiency_10k-ed3bba00d66c1cdd: crates/bench/src/bin/fig06_weighted_efficiency_10k.rs

crates/bench/src/bin/fig06_weighted_efficiency_10k.rs:
