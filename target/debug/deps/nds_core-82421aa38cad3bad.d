/root/repo/target/debug/deps/nds_core-82421aa38cad3bad.d: crates/core/src/lib.rs crates/core/src/analyzer.rs crates/core/src/comparison.rs crates/core/src/conclusions.rs crates/core/src/error.rs crates/core/src/prelude.rs crates/core/src/report.rs crates/core/src/scenario.rs crates/core/src/sweep.rs

/root/repo/target/debug/deps/nds_core-82421aa38cad3bad: crates/core/src/lib.rs crates/core/src/analyzer.rs crates/core/src/comparison.rs crates/core/src/conclusions.rs crates/core/src/error.rs crates/core/src/prelude.rs crates/core/src/report.rs crates/core/src/scenario.rs crates/core/src/sweep.rs

crates/core/src/lib.rs:
crates/core/src/analyzer.rs:
crates/core/src/comparison.rs:
crates/core/src/conclusions.rs:
crates/core/src/error.rs:
crates/core/src/prelude.rs:
crates/core/src/report.rs:
crates/core/src/scenario.rs:
crates/core/src/sweep.rs:
