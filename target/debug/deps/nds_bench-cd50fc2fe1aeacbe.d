/root/repo/target/debug/deps/nds_bench-cd50fc2fe1aeacbe.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/series.rs crates/bench/src/validation.rs

/root/repo/target/debug/deps/nds_bench-cd50fc2fe1aeacbe: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/series.rs crates/bench/src/validation.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/series.rs:
crates/bench/src/validation.rs:
