/root/repo/target/debug/deps/extensions-1789abfe2bf8e638.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-1789abfe2bf8e638: tests/extensions.rs

tests/extensions.rs:
