/root/repo/target/debug/deps/nds-a934fbe976cddb86.d: src/bin/nds.rs

/root/repo/target/debug/deps/nds-a934fbe976cddb86: src/bin/nds.rs

src/bin/nds.rs:
