/root/repo/target/debug/deps/conclusions-16ef69c8e0e0fd57.d: tests/conclusions.rs

/root/repo/target/debug/deps/conclusions-16ef69c8e0e0fd57: tests/conclusions.rs

tests/conclusions.rs:
