/root/repo/target/debug/deps/ext_sync_rounds-594637567d4cdf47.d: crates/bench/src/bin/ext_sync_rounds.rs

/root/repo/target/debug/deps/ext_sync_rounds-594637567d4cdf47: crates/bench/src/bin/ext_sync_rounds.rs

crates/bench/src/bin/ext_sync_rounds.rs:
