/root/repo/target/debug/deps/fig11_validation_speedup-538365f5d3d90e09.d: crates/bench/src/bin/fig11_validation_speedup.rs

/root/repo/target/debug/deps/fig11_validation_speedup-538365f5d3d90e09: crates/bench/src/bin/fig11_validation_speedup.rs

crates/bench/src/bin/fig11_validation_speedup.rs:
