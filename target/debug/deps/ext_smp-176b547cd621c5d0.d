/root/repo/target/debug/deps/ext_smp-176b547cd621c5d0.d: crates/bench/src/bin/ext_smp.rs Cargo.toml

/root/repo/target/debug/deps/libext_smp-176b547cd621c5d0.rmeta: crates/bench/src/bin/ext_smp.rs Cargo.toml

crates/bench/src/bin/ext_smp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
