/root/repo/target/debug/deps/fig09_scaled-77a221d26e7bf262.d: crates/bench/src/bin/fig09_scaled.rs

/root/repo/target/debug/deps/fig09_scaled-77a221d26e7bf262: crates/bench/src/bin/fig09_scaled.rs

crates/bench/src/bin/fig09_scaled.rs:
