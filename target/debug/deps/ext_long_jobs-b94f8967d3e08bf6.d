/root/repo/target/debug/deps/ext_long_jobs-b94f8967d3e08bf6.d: crates/bench/src/bin/ext_long_jobs.rs Cargo.toml

/root/repo/target/debug/deps/libext_long_jobs-b94f8967d3e08bf6.rmeta: crates/bench/src/bin/ext_long_jobs.rs Cargo.toml

crates/bench/src/bin/ext_long_jobs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
