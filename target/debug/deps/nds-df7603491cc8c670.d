/root/repo/target/debug/deps/nds-df7603491cc8c670.d: src/bin/nds.rs Cargo.toml

/root/repo/target/debug/deps/libnds-df7603491cc8c670.rmeta: src/bin/nds.rs Cargo.toml

src/bin/nds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
