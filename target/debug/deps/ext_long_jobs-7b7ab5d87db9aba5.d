/root/repo/target/debug/deps/ext_long_jobs-7b7ab5d87db9aba5.d: crates/bench/src/bin/ext_long_jobs.rs

/root/repo/target/debug/deps/ext_long_jobs-7b7ab5d87db9aba5: crates/bench/src/bin/ext_long_jobs.rs

crates/bench/src/bin/ext_long_jobs.rs:
