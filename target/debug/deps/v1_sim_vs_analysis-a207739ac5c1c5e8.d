/root/repo/target/debug/deps/v1_sim_vs_analysis-a207739ac5c1c5e8.d: crates/bench/src/bin/v1_sim_vs_analysis.rs

/root/repo/target/debug/deps/v1_sim_vs_analysis-a207739ac5c1c5e8: crates/bench/src/bin/v1_sim_vs_analysis.rs

crates/bench/src/bin/v1_sim_vs_analysis.rs:
