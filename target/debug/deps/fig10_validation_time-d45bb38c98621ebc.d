/root/repo/target/debug/deps/fig10_validation_time-d45bb38c98621ebc.d: crates/bench/src/bin/fig10_validation_time.rs

/root/repo/target/debug/deps/fig10_validation_time-d45bb38c98621ebc: crates/bench/src/bin/fig10_validation_time.rs

crates/bench/src/bin/fig10_validation_time.rs:
