/root/repo/target/debug/deps/nds_des-3cabd2304a693cc3.d: crates/des/src/lib.rs crates/des/src/engine.rs crates/des/src/error.rs crates/des/src/facility.rs crates/des/src/monitor.rs crates/des/src/resource.rs crates/des/src/time.rs crates/des/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libnds_des-3cabd2304a693cc3.rmeta: crates/des/src/lib.rs crates/des/src/engine.rs crates/des/src/error.rs crates/des/src/facility.rs crates/des/src/monitor.rs crates/des/src/resource.rs crates/des/src/time.rs crates/des/src/trace.rs Cargo.toml

crates/des/src/lib.rs:
crates/des/src/engine.rs:
crates/des/src/error.rs:
crates/des/src/facility.rs:
crates/des/src/monitor.rs:
crates/des/src/resource.rs:
crates/des/src/time.rs:
crates/des/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
