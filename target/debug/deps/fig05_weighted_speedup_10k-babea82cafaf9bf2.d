/root/repo/target/debug/deps/fig05_weighted_speedup_10k-babea82cafaf9bf2.d: crates/bench/src/bin/fig05_weighted_speedup_10k.rs Cargo.toml

/root/repo/target/debug/deps/libfig05_weighted_speedup_10k-babea82cafaf9bf2.rmeta: crates/bench/src/bin/fig05_weighted_speedup_10k.rs Cargo.toml

crates/bench/src/bin/fig05_weighted_speedup_10k.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
