/root/repo/target/debug/deps/ext_sched_policies-459f779d75c9a393.d: crates/bench/src/bin/ext_sched_policies.rs Cargo.toml

/root/repo/target/debug/deps/libext_sched_policies-459f779d75c9a393.rmeta: crates/bench/src/bin/ext_sched_policies.rs Cargo.toml

crates/bench/src/bin/ext_sched_policies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
