/root/repo/target/debug/deps/rand-553a622e5b490d5f.d: crates/shims/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-553a622e5b490d5f.rmeta: crates/shims/rand/src/lib.rs Cargo.toml

crates/shims/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
