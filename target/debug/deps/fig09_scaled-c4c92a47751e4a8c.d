/root/repo/target/debug/deps/fig09_scaled-c4c92a47751e4a8c.d: crates/bench/src/bin/fig09_scaled.rs

/root/repo/target/debug/deps/fig09_scaled-c4c92a47751e4a8c: crates/bench/src/bin/fig09_scaled.rs

crates/bench/src/bin/fig09_scaled.rs:
