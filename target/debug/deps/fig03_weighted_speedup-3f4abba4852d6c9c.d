/root/repo/target/debug/deps/fig03_weighted_speedup-3f4abba4852d6c9c.d: crates/bench/src/bin/fig03_weighted_speedup.rs Cargo.toml

/root/repo/target/debug/deps/libfig03_weighted_speedup-3f4abba4852d6c9c.rmeta: crates/bench/src/bin/fig03_weighted_speedup.rs Cargo.toml

crates/bench/src/bin/fig03_weighted_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
