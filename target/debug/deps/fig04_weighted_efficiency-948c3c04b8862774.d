/root/repo/target/debug/deps/fig04_weighted_efficiency-948c3c04b8862774.d: crates/bench/src/bin/fig04_weighted_efficiency.rs Cargo.toml

/root/repo/target/debug/deps/libfig04_weighted_efficiency-948c3c04b8862774.rmeta: crates/bench/src/bin/fig04_weighted_efficiency.rs Cargo.toml

crates/bench/src/bin/fig04_weighted_efficiency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
