/root/repo/target/debug/deps/ext_hetero-c460e2df383c5ca5.d: crates/bench/src/bin/ext_hetero.rs

/root/repo/target/debug/deps/ext_hetero-c460e2df383c5ca5: crates/bench/src/bin/ext_hetero.rs

crates/bench/src/bin/ext_hetero.rs:
