/root/repo/target/debug/deps/ext_sched_policies-3498868b021367e7.d: crates/bench/src/bin/ext_sched_policies.rs

/root/repo/target/debug/deps/ext_sched_policies-3498868b021367e7: crates/bench/src/bin/ext_sched_policies.rs

crates/bench/src/bin/ext_sched_policies.rs:
