/root/repo/target/debug/deps/fig03_weighted_speedup-f0fcfa9601d2cf84.d: crates/bench/src/bin/fig03_weighted_speedup.rs

/root/repo/target/debug/deps/fig03_weighted_speedup-f0fcfa9601d2cf84: crates/bench/src/bin/fig03_weighted_speedup.rs

crates/bench/src/bin/fig03_weighted_speedup.rs:
