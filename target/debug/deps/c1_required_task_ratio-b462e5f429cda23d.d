/root/repo/target/debug/deps/c1_required_task_ratio-b462e5f429cda23d.d: crates/bench/src/bin/c1_required_task_ratio.rs Cargo.toml

/root/repo/target/debug/deps/libc1_required_task_ratio-b462e5f429cda23d.rmeta: crates/bench/src/bin/c1_required_task_ratio.rs Cargo.toml

crates/bench/src/bin/c1_required_task_ratio.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
