/root/repo/target/debug/deps/pvm_end_to_end-151b9d3639bf093a.d: tests/pvm_end_to_end.rs

/root/repo/target/debug/deps/pvm_end_to_end-151b9d3639bf093a: tests/pvm_end_to_end.rs

tests/pvm_end_to_end.rs:
