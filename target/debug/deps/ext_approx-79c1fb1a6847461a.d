/root/repo/target/debug/deps/ext_approx-79c1fb1a6847461a.d: crates/bench/src/bin/ext_approx.rs

/root/repo/target/debug/deps/ext_approx-79c1fb1a6847461a: crates/bench/src/bin/ext_approx.rs

crates/bench/src/bin/ext_approx.rs:
