/root/repo/target/debug/deps/fig11_validation_speedup-0669c52fe06e0233.d: crates/bench/src/bin/fig11_validation_speedup.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_validation_speedup-0669c52fe06e0233.rmeta: crates/bench/src/bin/fig11_validation_speedup.rs Cargo.toml

crates/bench/src/bin/fig11_validation_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
