/root/repo/target/debug/deps/fig02_efficiency-d818a704d1b947eb.d: crates/bench/src/bin/fig02_efficiency.rs

/root/repo/target/debug/deps/fig02_efficiency-d818a704d1b947eb: crates/bench/src/bin/fig02_efficiency.rs

crates/bench/src/bin/fig02_efficiency.rs:
