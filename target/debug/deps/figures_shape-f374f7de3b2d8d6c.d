/root/repo/target/debug/deps/figures_shape-f374f7de3b2d8d6c.d: tests/figures_shape.rs Cargo.toml

/root/repo/target/debug/deps/libfigures_shape-f374f7de3b2d8d6c.rmeta: tests/figures_shape.rs Cargo.toml

tests/figures_shape.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
