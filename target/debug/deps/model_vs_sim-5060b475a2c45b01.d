/root/repo/target/debug/deps/model_vs_sim-5060b475a2c45b01.d: tests/model_vs_sim.rs Cargo.toml

/root/repo/target/debug/deps/libmodel_vs_sim-5060b475a2c45b01.rmeta: tests/model_vs_sim.rs Cargo.toml

tests/model_vs_sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
