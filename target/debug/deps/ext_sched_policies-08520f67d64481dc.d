/root/repo/target/debug/deps/ext_sched_policies-08520f67d64481dc.d: crates/bench/src/bin/ext_sched_policies.rs Cargo.toml

/root/repo/target/debug/deps/libext_sched_policies-08520f67d64481dc.rmeta: crates/bench/src/bin/ext_sched_policies.rs Cargo.toml

crates/bench/src/bin/ext_sched_policies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
