/root/repo/target/debug/deps/ext_smp-fbd5d86d3e5387a0.d: crates/bench/src/bin/ext_smp.rs Cargo.toml

/root/repo/target/debug/deps/libext_smp-fbd5d86d3e5387a0.rmeta: crates/bench/src/bin/ext_smp.rs Cargo.toml

crates/bench/src/bin/ext_smp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
