/root/repo/target/debug/deps/ext_no_guarantee-ce7b1f536a71d587.d: crates/bench/src/bin/ext_no_guarantee.rs

/root/repo/target/debug/deps/ext_no_guarantee-ce7b1f536a71d587: crates/bench/src/bin/ext_no_guarantee.rs

crates/bench/src/bin/ext_no_guarantee.rs:
