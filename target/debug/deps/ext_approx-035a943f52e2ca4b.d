/root/repo/target/debug/deps/ext_approx-035a943f52e2ca4b.d: crates/bench/src/bin/ext_approx.rs

/root/repo/target/debug/deps/ext_approx-035a943f52e2ca4b: crates/bench/src/bin/ext_approx.rs

crates/bench/src/bin/ext_approx.rs:
