/root/repo/target/debug/deps/nds-1578210375a9aa59.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnds-1578210375a9aa59.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
