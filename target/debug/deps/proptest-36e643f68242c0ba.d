/root/repo/target/debug/deps/proptest-36e643f68242c0ba.d: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/strategy.rs crates/shims/proptest/src/test_runner.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-36e643f68242c0ba.rmeta: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/strategy.rs crates/shims/proptest/src/test_runner.rs Cargo.toml

crates/shims/proptest/src/lib.rs:
crates/shims/proptest/src/strategy.rs:
crates/shims/proptest/src/test_runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
