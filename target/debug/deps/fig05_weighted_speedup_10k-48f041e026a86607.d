/root/repo/target/debug/deps/fig05_weighted_speedup_10k-48f041e026a86607.d: crates/bench/src/bin/fig05_weighted_speedup_10k.rs

/root/repo/target/debug/deps/fig05_weighted_speedup_10k-48f041e026a86607: crates/bench/src/bin/fig05_weighted_speedup_10k.rs

crates/bench/src/bin/fig05_weighted_speedup_10k.rs:
