/root/repo/target/debug/deps/fig08_task_ratio_sizes-0216a9387348b20d.d: crates/bench/src/bin/fig08_task_ratio_sizes.rs

/root/repo/target/debug/deps/fig08_task_ratio_sizes-0216a9387348b20d: crates/bench/src/bin/fig08_task_ratio_sizes.rs

crates/bench/src/bin/fig08_task_ratio_sizes.rs:
