/root/repo/target/debug/deps/nds-31aea7f130c81f48.d: src/bin/nds.rs Cargo.toml

/root/repo/target/debug/deps/libnds-31aea7f130c81f48.rmeta: src/bin/nds.rs Cargo.toml

src/bin/nds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
