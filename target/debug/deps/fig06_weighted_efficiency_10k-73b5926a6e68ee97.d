/root/repo/target/debug/deps/fig06_weighted_efficiency_10k-73b5926a6e68ee97.d: crates/bench/src/bin/fig06_weighted_efficiency_10k.rs Cargo.toml

/root/repo/target/debug/deps/libfig06_weighted_efficiency_10k-73b5926a6e68ee97.rmeta: crates/bench/src/bin/fig06_weighted_efficiency_10k.rs Cargo.toml

crates/bench/src/bin/fig06_weighted_efficiency_10k.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
