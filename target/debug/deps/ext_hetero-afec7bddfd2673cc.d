/root/repo/target/debug/deps/ext_hetero-afec7bddfd2673cc.d: crates/bench/src/bin/ext_hetero.rs Cargo.toml

/root/repo/target/debug/deps/libext_hetero-afec7bddfd2673cc.rmeta: crates/bench/src/bin/ext_hetero.rs Cargo.toml

crates/bench/src/bin/ext_hetero.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
