/root/repo/target/debug/deps/ext_long_jobs-d3d2329c3d9402c2.d: crates/bench/src/bin/ext_long_jobs.rs Cargo.toml

/root/repo/target/debug/deps/libext_long_jobs-d3d2329c3d9402c2.rmeta: crates/bench/src/bin/ext_long_jobs.rs Cargo.toml

crates/bench/src/bin/ext_long_jobs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
