/root/repo/target/debug/deps/fig01_speedup-11a5cb361f42d6ac.d: crates/bench/src/bin/fig01_speedup.rs

/root/repo/target/debug/deps/fig01_speedup-11a5cb361f42d6ac: crates/bench/src/bin/fig01_speedup.rs

crates/bench/src/bin/fig01_speedup.rs:
