/root/repo/target/debug/deps/ext_hetero-b1919eee35af99ab.d: crates/bench/src/bin/ext_hetero.rs

/root/repo/target/debug/deps/ext_hetero-b1919eee35af99ab: crates/bench/src/bin/ext_hetero.rs

crates/bench/src/bin/ext_hetero.rs:
