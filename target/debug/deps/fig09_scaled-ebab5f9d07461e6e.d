/root/repo/target/debug/deps/fig09_scaled-ebab5f9d07461e6e.d: crates/bench/src/bin/fig09_scaled.rs Cargo.toml

/root/repo/target/debug/deps/libfig09_scaled-ebab5f9d07461e6e.rmeta: crates/bench/src/bin/fig09_scaled.rs Cargo.toml

crates/bench/src/bin/fig09_scaled.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
