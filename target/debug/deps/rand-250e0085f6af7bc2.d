/root/repo/target/debug/deps/rand-250e0085f6af7bc2.d: crates/shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-250e0085f6af7bc2.rlib: crates/shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-250e0085f6af7bc2.rmeta: crates/shims/rand/src/lib.rs

crates/shims/rand/src/lib.rs:
