/root/repo/target/debug/deps/fig05_weighted_speedup_10k-2efeb6debb7572b0.d: crates/bench/src/bin/fig05_weighted_speedup_10k.rs

/root/repo/target/debug/deps/fig05_weighted_speedup_10k-2efeb6debb7572b0: crates/bench/src/bin/fig05_weighted_speedup_10k.rs

crates/bench/src/bin/fig05_weighted_speedup_10k.rs:
