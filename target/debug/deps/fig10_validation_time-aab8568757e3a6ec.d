/root/repo/target/debug/deps/fig10_validation_time-aab8568757e3a6ec.d: crates/bench/src/bin/fig10_validation_time.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_validation_time-aab8568757e3a6ec.rmeta: crates/bench/src/bin/fig10_validation_time.rs Cargo.toml

crates/bench/src/bin/fig10_validation_time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
