/root/repo/target/debug/deps/ext_smp-cd0af4f6b9ec4131.d: crates/bench/src/bin/ext_smp.rs

/root/repo/target/debug/deps/ext_smp-cd0af4f6b9ec4131: crates/bench/src/bin/ext_smp.rs

crates/bench/src/bin/ext_smp.rs:
