/root/repo/target/debug/deps/ext_long_jobs-c8ac31e641472338.d: crates/bench/src/bin/ext_long_jobs.rs

/root/repo/target/debug/deps/ext_long_jobs-c8ac31e641472338: crates/bench/src/bin/ext_long_jobs.rs

crates/bench/src/bin/ext_long_jobs.rs:
