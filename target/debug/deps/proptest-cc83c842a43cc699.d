/root/repo/target/debug/deps/proptest-cc83c842a43cc699.d: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/strategy.rs crates/shims/proptest/src/test_runner.rs

/root/repo/target/debug/deps/proptest-cc83c842a43cc699: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/strategy.rs crates/shims/proptest/src/test_runner.rs

crates/shims/proptest/src/lib.rs:
crates/shims/proptest/src/strategy.rs:
crates/shims/proptest/src/test_runner.rs:
