/root/repo/target/debug/deps/fig07_task_ratio-d4de99633d8ef682.d: crates/bench/src/bin/fig07_task_ratio.rs Cargo.toml

/root/repo/target/debug/deps/libfig07_task_ratio-d4de99633d8ef682.rmeta: crates/bench/src/bin/fig07_task_ratio.rs Cargo.toml

crates/bench/src/bin/fig07_task_ratio.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
