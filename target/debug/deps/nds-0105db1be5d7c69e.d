/root/repo/target/debug/deps/nds-0105db1be5d7c69e.d: src/bin/nds.rs

/root/repo/target/debug/deps/nds-0105db1be5d7c69e: src/bin/nds.rs

src/bin/nds.rs:
