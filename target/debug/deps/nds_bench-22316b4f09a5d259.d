/root/repo/target/debug/deps/nds_bench-22316b4f09a5d259.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/series.rs crates/bench/src/validation.rs Cargo.toml

/root/repo/target/debug/deps/libnds_bench-22316b4f09a5d259.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/series.rs crates/bench/src/validation.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/series.rs:
crates/bench/src/validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
