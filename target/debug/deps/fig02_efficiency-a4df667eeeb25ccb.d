/root/repo/target/debug/deps/fig02_efficiency-a4df667eeeb25ccb.d: crates/bench/src/bin/fig02_efficiency.rs

/root/repo/target/debug/deps/fig02_efficiency-a4df667eeeb25ccb: crates/bench/src/bin/fig02_efficiency.rs

crates/bench/src/bin/fig02_efficiency.rs:
