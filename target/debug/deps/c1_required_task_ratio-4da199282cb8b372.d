/root/repo/target/debug/deps/c1_required_task_ratio-4da199282cb8b372.d: crates/bench/src/bin/c1_required_task_ratio.rs

/root/repo/target/debug/deps/c1_required_task_ratio-4da199282cb8b372: crates/bench/src/bin/c1_required_task_ratio.rs

crates/bench/src/bin/c1_required_task_ratio.rs:
