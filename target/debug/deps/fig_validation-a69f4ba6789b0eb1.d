/root/repo/target/debug/deps/fig_validation-a69f4ba6789b0eb1.d: crates/bench/benches/fig_validation.rs Cargo.toml

/root/repo/target/debug/deps/libfig_validation-a69f4ba6789b0eb1.rmeta: crates/bench/benches/fig_validation.rs Cargo.toml

crates/bench/benches/fig_validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
