/root/repo/target/debug/deps/nds_model-e280cdcc8cfd751a.d: crates/model/src/lib.rs crates/model/src/approx.rs crates/model/src/binomial.rs crates/model/src/distribution.rs crates/model/src/error.rs crates/model/src/expectation.rs crates/model/src/hetero.rs crates/model/src/interference.rs crates/model/src/metrics.rs crates/model/src/params.rs crates/model/src/scaled.rs crates/model/src/sensitivity.rs crates/model/src/solver.rs crates/model/src/variance.rs Cargo.toml

/root/repo/target/debug/deps/libnds_model-e280cdcc8cfd751a.rmeta: crates/model/src/lib.rs crates/model/src/approx.rs crates/model/src/binomial.rs crates/model/src/distribution.rs crates/model/src/error.rs crates/model/src/expectation.rs crates/model/src/hetero.rs crates/model/src/interference.rs crates/model/src/metrics.rs crates/model/src/params.rs crates/model/src/scaled.rs crates/model/src/sensitivity.rs crates/model/src/solver.rs crates/model/src/variance.rs Cargo.toml

crates/model/src/lib.rs:
crates/model/src/approx.rs:
crates/model/src/binomial.rs:
crates/model/src/distribution.rs:
crates/model/src/error.rs:
crates/model/src/expectation.rs:
crates/model/src/hetero.rs:
crates/model/src/interference.rs:
crates/model/src/metrics.rs:
crates/model/src/params.rs:
crates/model/src/scaled.rs:
crates/model/src/sensitivity.rs:
crates/model/src/solver.rs:
crates/model/src/variance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
