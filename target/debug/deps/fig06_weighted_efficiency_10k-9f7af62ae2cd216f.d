/root/repo/target/debug/deps/fig06_weighted_efficiency_10k-9f7af62ae2cd216f.d: crates/bench/src/bin/fig06_weighted_efficiency_10k.rs

/root/repo/target/debug/deps/fig06_weighted_efficiency_10k-9f7af62ae2cd216f: crates/bench/src/bin/fig06_weighted_efficiency_10k.rs

crates/bench/src/bin/fig06_weighted_efficiency_10k.rs:
