/root/repo/target/debug/deps/extensions-518a5a086804c9fd.d: tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-518a5a086804c9fd.rmeta: tests/extensions.rs Cargo.toml

tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
