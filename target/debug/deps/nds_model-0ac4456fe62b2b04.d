/root/repo/target/debug/deps/nds_model-0ac4456fe62b2b04.d: crates/model/src/lib.rs crates/model/src/approx.rs crates/model/src/binomial.rs crates/model/src/distribution.rs crates/model/src/error.rs crates/model/src/expectation.rs crates/model/src/hetero.rs crates/model/src/interference.rs crates/model/src/metrics.rs crates/model/src/params.rs crates/model/src/scaled.rs crates/model/src/sensitivity.rs crates/model/src/solver.rs crates/model/src/variance.rs

/root/repo/target/debug/deps/nds_model-0ac4456fe62b2b04: crates/model/src/lib.rs crates/model/src/approx.rs crates/model/src/binomial.rs crates/model/src/distribution.rs crates/model/src/error.rs crates/model/src/expectation.rs crates/model/src/hetero.rs crates/model/src/interference.rs crates/model/src/metrics.rs crates/model/src/params.rs crates/model/src/scaled.rs crates/model/src/sensitivity.rs crates/model/src/solver.rs crates/model/src/variance.rs

crates/model/src/lib.rs:
crates/model/src/approx.rs:
crates/model/src/binomial.rs:
crates/model/src/distribution.rs:
crates/model/src/error.rs:
crates/model/src/expectation.rs:
crates/model/src/hetero.rs:
crates/model/src/interference.rs:
crates/model/src/metrics.rs:
crates/model/src/params.rs:
crates/model/src/scaled.rs:
crates/model/src/sensitivity.rs:
crates/model/src/solver.rs:
crates/model/src/variance.rs:
