/root/repo/target/debug/deps/v1_sim_vs_analysis-4a611af4bb06adde.d: crates/bench/src/bin/v1_sim_vs_analysis.rs Cargo.toml

/root/repo/target/debug/deps/libv1_sim_vs_analysis-4a611af4bb06adde.rmeta: crates/bench/src/bin/v1_sim_vs_analysis.rs Cargo.toml

crates/bench/src/bin/v1_sim_vs_analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
