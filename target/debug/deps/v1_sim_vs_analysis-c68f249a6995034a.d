/root/repo/target/debug/deps/v1_sim_vs_analysis-c68f249a6995034a.d: crates/bench/src/bin/v1_sim_vs_analysis.rs

/root/repo/target/debug/deps/v1_sim_vs_analysis-c68f249a6995034a: crates/bench/src/bin/v1_sim_vs_analysis.rs

crates/bench/src/bin/v1_sim_vs_analysis.rs:
