/root/repo/target/debug/deps/nds_bench-792f3ffa8ccf9a23.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/series.rs crates/bench/src/validation.rs Cargo.toml

/root/repo/target/debug/deps/libnds_bench-792f3ffa8ccf9a23.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/series.rs crates/bench/src/validation.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/series.rs:
crates/bench/src/validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
