/root/repo/target/debug/deps/substrate-5722a81962d36460.d: crates/bench/benches/substrate.rs Cargo.toml

/root/repo/target/debug/deps/libsubstrate-5722a81962d36460.rmeta: crates/bench/benches/substrate.rs Cargo.toml

crates/bench/benches/substrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
