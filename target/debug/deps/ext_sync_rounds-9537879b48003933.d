/root/repo/target/debug/deps/ext_sync_rounds-9537879b48003933.d: crates/bench/src/bin/ext_sync_rounds.rs

/root/repo/target/debug/deps/ext_sync_rounds-9537879b48003933: crates/bench/src/bin/ext_sync_rounds.rs

crates/bench/src/bin/ext_sync_rounds.rs:
