/root/repo/target/debug/deps/ext_multi_job-f9db382f4f7cb58d.d: crates/bench/src/bin/ext_multi_job.rs Cargo.toml

/root/repo/target/debug/deps/libext_multi_job-f9db382f4f7cb58d.rmeta: crates/bench/src/bin/ext_multi_job.rs Cargo.toml

crates/bench/src/bin/ext_multi_job.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
