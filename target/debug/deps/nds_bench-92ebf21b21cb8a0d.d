/root/repo/target/debug/deps/nds_bench-92ebf21b21cb8a0d.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/series.rs crates/bench/src/validation.rs

/root/repo/target/debug/deps/libnds_bench-92ebf21b21cb8a0d.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/series.rs crates/bench/src/validation.rs

/root/repo/target/debug/deps/libnds_bench-92ebf21b21cb8a0d.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/series.rs crates/bench/src/validation.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/series.rs:
crates/bench/src/validation.rs:
