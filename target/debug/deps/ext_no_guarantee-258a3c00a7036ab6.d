/root/repo/target/debug/deps/ext_no_guarantee-258a3c00a7036ab6.d: crates/bench/src/bin/ext_no_guarantee.rs

/root/repo/target/debug/deps/ext_no_guarantee-258a3c00a7036ab6: crates/bench/src/bin/ext_no_guarantee.rs

crates/bench/src/bin/ext_no_guarantee.rs:
