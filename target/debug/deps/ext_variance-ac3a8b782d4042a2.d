/root/repo/target/debug/deps/ext_variance-ac3a8b782d4042a2.d: crates/bench/src/bin/ext_variance.rs

/root/repo/target/debug/deps/ext_variance-ac3a8b782d4042a2: crates/bench/src/bin/ext_variance.rs

crates/bench/src/bin/ext_variance.rs:
