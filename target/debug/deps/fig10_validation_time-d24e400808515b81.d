/root/repo/target/debug/deps/fig10_validation_time-d24e400808515b81.d: crates/bench/src/bin/fig10_validation_time.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_validation_time-d24e400808515b81.rmeta: crates/bench/src/bin/fig10_validation_time.rs Cargo.toml

crates/bench/src/bin/fig10_validation_time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
