/root/repo/target/debug/deps/ext_multi_job-eb7c6a70ae5625a8.d: crates/bench/src/bin/ext_multi_job.rs Cargo.toml

/root/repo/target/debug/deps/libext_multi_job-eb7c6a70ae5625a8.rmeta: crates/bench/src/bin/ext_multi_job.rs Cargo.toml

crates/bench/src/bin/ext_multi_job.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
