/root/repo/target/debug/deps/ext_sync_rounds-67ed59eacc8a4747.d: crates/bench/src/bin/ext_sync_rounds.rs Cargo.toml

/root/repo/target/debug/deps/libext_sync_rounds-67ed59eacc8a4747.rmeta: crates/bench/src/bin/ext_sync_rounds.rs Cargo.toml

crates/bench/src/bin/ext_sync_rounds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
