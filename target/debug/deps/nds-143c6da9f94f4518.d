/root/repo/target/debug/deps/nds-143c6da9f94f4518.d: src/lib.rs

/root/repo/target/debug/deps/nds-143c6da9f94f4518: src/lib.rs

src/lib.rs:
