/root/repo/target/debug/deps/nds_sched-2ed6e44f99abbf69.d: crates/sched/src/lib.rs crates/sched/src/error.rs crates/sched/src/eviction.rs crates/sched/src/metrics.rs crates/sched/src/policy.rs crates/sched/src/pool.rs crates/sched/src/queue.rs crates/sched/src/simulator.rs

/root/repo/target/debug/deps/libnds_sched-2ed6e44f99abbf69.rlib: crates/sched/src/lib.rs crates/sched/src/error.rs crates/sched/src/eviction.rs crates/sched/src/metrics.rs crates/sched/src/policy.rs crates/sched/src/pool.rs crates/sched/src/queue.rs crates/sched/src/simulator.rs

/root/repo/target/debug/deps/libnds_sched-2ed6e44f99abbf69.rmeta: crates/sched/src/lib.rs crates/sched/src/error.rs crates/sched/src/eviction.rs crates/sched/src/metrics.rs crates/sched/src/policy.rs crates/sched/src/pool.rs crates/sched/src/queue.rs crates/sched/src/simulator.rs

crates/sched/src/lib.rs:
crates/sched/src/error.rs:
crates/sched/src/eviction.rs:
crates/sched/src/metrics.rs:
crates/sched/src/policy.rs:
crates/sched/src/pool.rs:
crates/sched/src/queue.rs:
crates/sched/src/simulator.rs:
