/root/repo/target/debug/deps/fig03_weighted_speedup-92f85b98de1c292d.d: crates/bench/src/bin/fig03_weighted_speedup.rs

/root/repo/target/debug/deps/fig03_weighted_speedup-92f85b98de1c292d: crates/bench/src/bin/fig03_weighted_speedup.rs

crates/bench/src/bin/fig03_weighted_speedup.rs:
