/root/repo/target/debug/deps/nds-69fdd89f23dc52e2.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnds-69fdd89f23dc52e2.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
