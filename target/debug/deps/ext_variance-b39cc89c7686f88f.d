/root/repo/target/debug/deps/ext_variance-b39cc89c7686f88f.d: crates/bench/src/bin/ext_variance.rs Cargo.toml

/root/repo/target/debug/deps/libext_variance-b39cc89c7686f88f.rmeta: crates/bench/src/bin/ext_variance.rs Cargo.toml

crates/bench/src/bin/ext_variance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
