/root/repo/target/debug/deps/ext_variance-73514f9778d9d069.d: crates/bench/src/bin/ext_variance.rs

/root/repo/target/debug/deps/ext_variance-73514f9778d9d069: crates/bench/src/bin/ext_variance.rs

crates/bench/src/bin/ext_variance.rs:
