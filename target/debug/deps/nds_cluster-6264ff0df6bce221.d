/root/repo/target/debug/deps/nds_cluster-6264ff0df6bce221.d: crates/cluster/src/lib.rs crates/cluster/src/config.rs crates/cluster/src/continuous.rs crates/cluster/src/discrete.rs crates/cluster/src/error.rs crates/cluster/src/experiment.rs crates/cluster/src/job.rs crates/cluster/src/multi.rs crates/cluster/src/owner.rs crates/cluster/src/probe.rs crates/cluster/src/smp.rs crates/cluster/src/task.rs

/root/repo/target/debug/deps/libnds_cluster-6264ff0df6bce221.rlib: crates/cluster/src/lib.rs crates/cluster/src/config.rs crates/cluster/src/continuous.rs crates/cluster/src/discrete.rs crates/cluster/src/error.rs crates/cluster/src/experiment.rs crates/cluster/src/job.rs crates/cluster/src/multi.rs crates/cluster/src/owner.rs crates/cluster/src/probe.rs crates/cluster/src/smp.rs crates/cluster/src/task.rs

/root/repo/target/debug/deps/libnds_cluster-6264ff0df6bce221.rmeta: crates/cluster/src/lib.rs crates/cluster/src/config.rs crates/cluster/src/continuous.rs crates/cluster/src/discrete.rs crates/cluster/src/error.rs crates/cluster/src/experiment.rs crates/cluster/src/job.rs crates/cluster/src/multi.rs crates/cluster/src/owner.rs crates/cluster/src/probe.rs crates/cluster/src/smp.rs crates/cluster/src/task.rs

crates/cluster/src/lib.rs:
crates/cluster/src/config.rs:
crates/cluster/src/continuous.rs:
crates/cluster/src/discrete.rs:
crates/cluster/src/error.rs:
crates/cluster/src/experiment.rs:
crates/cluster/src/job.rs:
crates/cluster/src/multi.rs:
crates/cluster/src/owner.rs:
crates/cluster/src/probe.rs:
crates/cluster/src/smp.rs:
crates/cluster/src/task.rs:
