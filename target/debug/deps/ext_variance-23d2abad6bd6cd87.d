/root/repo/target/debug/deps/ext_variance-23d2abad6bd6cd87.d: crates/bench/src/bin/ext_variance.rs Cargo.toml

/root/repo/target/debug/deps/libext_variance-23d2abad6bd6cd87.rmeta: crates/bench/src/bin/ext_variance.rs Cargo.toml

crates/bench/src/bin/ext_variance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
