/root/repo/target/debug/deps/ext_no_guarantee-e7216f5b14182097.d: crates/bench/src/bin/ext_no_guarantee.rs Cargo.toml

/root/repo/target/debug/deps/libext_no_guarantee-e7216f5b14182097.rmeta: crates/bench/src/bin/ext_no_guarantee.rs Cargo.toml

crates/bench/src/bin/ext_no_guarantee.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
