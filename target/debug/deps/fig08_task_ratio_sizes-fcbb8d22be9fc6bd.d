/root/repo/target/debug/deps/fig08_task_ratio_sizes-fcbb8d22be9fc6bd.d: crates/bench/src/bin/fig08_task_ratio_sizes.rs

/root/repo/target/debug/deps/fig08_task_ratio_sizes-fcbb8d22be9fc6bd: crates/bench/src/bin/fig08_task_ratio_sizes.rs

crates/bench/src/bin/fig08_task_ratio_sizes.rs:
