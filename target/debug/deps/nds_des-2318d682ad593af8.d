/root/repo/target/debug/deps/nds_des-2318d682ad593af8.d: crates/des/src/lib.rs crates/des/src/engine.rs crates/des/src/error.rs crates/des/src/facility.rs crates/des/src/monitor.rs crates/des/src/resource.rs crates/des/src/time.rs crates/des/src/trace.rs

/root/repo/target/debug/deps/nds_des-2318d682ad593af8: crates/des/src/lib.rs crates/des/src/engine.rs crates/des/src/error.rs crates/des/src/facility.rs crates/des/src/monitor.rs crates/des/src/resource.rs crates/des/src/time.rs crates/des/src/trace.rs

crates/des/src/lib.rs:
crates/des/src/engine.rs:
crates/des/src/error.rs:
crates/des/src/facility.rs:
crates/des/src/monitor.rs:
crates/des/src/resource.rs:
crates/des/src/time.rs:
crates/des/src/trace.rs:
