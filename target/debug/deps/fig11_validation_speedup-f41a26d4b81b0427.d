/root/repo/target/debug/deps/fig11_validation_speedup-f41a26d4b81b0427.d: crates/bench/src/bin/fig11_validation_speedup.rs

/root/repo/target/debug/deps/fig11_validation_speedup-f41a26d4b81b0427: crates/bench/src/bin/fig11_validation_speedup.rs

crates/bench/src/bin/fig11_validation_speedup.rs:
