/root/repo/target/debug/deps/fig_model-cb2dca5732045b18.d: crates/bench/benches/fig_model.rs Cargo.toml

/root/repo/target/debug/deps/libfig_model-cb2dca5732045b18.rmeta: crates/bench/benches/fig_model.rs Cargo.toml

crates/bench/benches/fig_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
