/root/repo/target/debug/deps/ext_sync_rounds-76d16f3b30d5c79e.d: crates/bench/src/bin/ext_sync_rounds.rs Cargo.toml

/root/repo/target/debug/deps/libext_sync_rounds-76d16f3b30d5c79e.rmeta: crates/bench/src/bin/ext_sync_rounds.rs Cargo.toml

crates/bench/src/bin/ext_sync_rounds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
