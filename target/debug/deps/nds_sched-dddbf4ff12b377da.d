/root/repo/target/debug/deps/nds_sched-dddbf4ff12b377da.d: crates/sched/src/lib.rs crates/sched/src/error.rs crates/sched/src/eviction.rs crates/sched/src/metrics.rs crates/sched/src/policy.rs crates/sched/src/pool.rs crates/sched/src/queue.rs crates/sched/src/simulator.rs Cargo.toml

/root/repo/target/debug/deps/libnds_sched-dddbf4ff12b377da.rmeta: crates/sched/src/lib.rs crates/sched/src/error.rs crates/sched/src/eviction.rs crates/sched/src/metrics.rs crates/sched/src/policy.rs crates/sched/src/pool.rs crates/sched/src/queue.rs crates/sched/src/simulator.rs Cargo.toml

crates/sched/src/lib.rs:
crates/sched/src/error.rs:
crates/sched/src/eviction.rs:
crates/sched/src/metrics.rs:
crates/sched/src/policy.rs:
crates/sched/src/pool.rs:
crates/sched/src/queue.rs:
crates/sched/src/simulator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
