/root/repo/target/debug/deps/ext_multi_job-da0bd9c352b5f400.d: crates/bench/src/bin/ext_multi_job.rs

/root/repo/target/debug/deps/ext_multi_job-da0bd9c352b5f400: crates/bench/src/bin/ext_multi_job.rs

crates/bench/src/bin/ext_multi_job.rs:
