/root/repo/target/debug/deps/fig04_weighted_efficiency-d702c948a5fc15f6.d: crates/bench/src/bin/fig04_weighted_efficiency.rs

/root/repo/target/debug/deps/fig04_weighted_efficiency-d702c948a5fc15f6: crates/bench/src/bin/fig04_weighted_efficiency.rs

crates/bench/src/bin/fig04_weighted_efficiency.rs:
