/root/repo/target/debug/deps/fig04_weighted_efficiency-77acff49ad3c41eb.d: crates/bench/src/bin/fig04_weighted_efficiency.rs

/root/repo/target/debug/deps/fig04_weighted_efficiency-77acff49ad3c41eb: crates/bench/src/bin/fig04_weighted_efficiency.rs

crates/bench/src/bin/fig04_weighted_efficiency.rs:
