/root/repo/target/debug/deps/sched_invariants-bdefe3ea3dfdecbe.d: tests/sched_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libsched_invariants-bdefe3ea3dfdecbe.rmeta: tests/sched_invariants.rs Cargo.toml

tests/sched_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
