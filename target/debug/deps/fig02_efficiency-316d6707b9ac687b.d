/root/repo/target/debug/deps/fig02_efficiency-316d6707b9ac687b.d: crates/bench/src/bin/fig02_efficiency.rs Cargo.toml

/root/repo/target/debug/deps/libfig02_efficiency-316d6707b9ac687b.rmeta: crates/bench/src/bin/fig02_efficiency.rs Cargo.toml

crates/bench/src/bin/fig02_efficiency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
