/root/repo/target/debug/deps/fig07_task_ratio-6a31d36935b84f9a.d: crates/bench/src/bin/fig07_task_ratio.rs

/root/repo/target/debug/deps/fig07_task_ratio-6a31d36935b84f9a: crates/bench/src/bin/fig07_task_ratio.rs

crates/bench/src/bin/fig07_task_ratio.rs:
