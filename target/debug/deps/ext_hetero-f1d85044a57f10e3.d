/root/repo/target/debug/deps/ext_hetero-f1d85044a57f10e3.d: crates/bench/src/bin/ext_hetero.rs Cargo.toml

/root/repo/target/debug/deps/libext_hetero-f1d85044a57f10e3.rmeta: crates/bench/src/bin/ext_hetero.rs Cargo.toml

crates/bench/src/bin/ext_hetero.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
