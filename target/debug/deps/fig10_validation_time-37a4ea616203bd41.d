/root/repo/target/debug/deps/fig10_validation_time-37a4ea616203bd41.d: crates/bench/src/bin/fig10_validation_time.rs

/root/repo/target/debug/deps/fig10_validation_time-37a4ea616203bd41: crates/bench/src/bin/fig10_validation_time.rs

crates/bench/src/bin/fig10_validation_time.rs:
