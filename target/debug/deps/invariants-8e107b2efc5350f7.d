/root/repo/target/debug/deps/invariants-8e107b2efc5350f7.d: tests/invariants.rs Cargo.toml

/root/repo/target/debug/deps/libinvariants-8e107b2efc5350f7.rmeta: tests/invariants.rs Cargo.toml

tests/invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
