/root/repo/target/debug/deps/sched_invariants-a29a69299cf06d40.d: tests/sched_invariants.rs

/root/repo/target/debug/deps/sched_invariants-a29a69299cf06d40: tests/sched_invariants.rs

tests/sched_invariants.rs:
