/root/repo/target/debug/deps/fig02_efficiency-9ad69ee5f63d6111.d: crates/bench/src/bin/fig02_efficiency.rs Cargo.toml

/root/repo/target/debug/deps/libfig02_efficiency-9ad69ee5f63d6111.rmeta: crates/bench/src/bin/fig02_efficiency.rs Cargo.toml

crates/bench/src/bin/fig02_efficiency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
