/root/repo/target/debug/deps/invariants-ed486602148c5c01.d: tests/invariants.rs

/root/repo/target/debug/deps/invariants-ed486602148c5c01: tests/invariants.rs

tests/invariants.rs:
