/root/repo/target/debug/deps/ext_approx-3477f5ee956c4d8f.d: crates/bench/src/bin/ext_approx.rs Cargo.toml

/root/repo/target/debug/deps/libext_approx-3477f5ee956c4d8f.rmeta: crates/bench/src/bin/ext_approx.rs Cargo.toml

crates/bench/src/bin/ext_approx.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
