/root/repo/target/debug/deps/nds_cluster-729f109d6e0c3ab4.d: crates/cluster/src/lib.rs crates/cluster/src/config.rs crates/cluster/src/continuous.rs crates/cluster/src/discrete.rs crates/cluster/src/error.rs crates/cluster/src/experiment.rs crates/cluster/src/job.rs crates/cluster/src/multi.rs crates/cluster/src/owner.rs crates/cluster/src/probe.rs crates/cluster/src/smp.rs crates/cluster/src/task.rs Cargo.toml

/root/repo/target/debug/deps/libnds_cluster-729f109d6e0c3ab4.rmeta: crates/cluster/src/lib.rs crates/cluster/src/config.rs crates/cluster/src/continuous.rs crates/cluster/src/discrete.rs crates/cluster/src/error.rs crates/cluster/src/experiment.rs crates/cluster/src/job.rs crates/cluster/src/multi.rs crates/cluster/src/owner.rs crates/cluster/src/probe.rs crates/cluster/src/smp.rs crates/cluster/src/task.rs Cargo.toml

crates/cluster/src/lib.rs:
crates/cluster/src/config.rs:
crates/cluster/src/continuous.rs:
crates/cluster/src/discrete.rs:
crates/cluster/src/error.rs:
crates/cluster/src/experiment.rs:
crates/cluster/src/job.rs:
crates/cluster/src/multi.rs:
crates/cluster/src/owner.rs:
crates/cluster/src/probe.rs:
crates/cluster/src/smp.rs:
crates/cluster/src/task.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
