/root/repo/target/debug/deps/nds_stats-d67ff9f39a02f160.d: crates/stats/src/lib.rs crates/stats/src/autocorr.rs crates/stats/src/batch_means.rs crates/stats/src/distributions.rs crates/stats/src/error.rs crates/stats/src/histogram.rs crates/stats/src/order_stats.rs crates/stats/src/rng.rs crates/stats/src/special.rs crates/stats/src/student_t.rs crates/stats/src/summary.rs Cargo.toml

/root/repo/target/debug/deps/libnds_stats-d67ff9f39a02f160.rmeta: crates/stats/src/lib.rs crates/stats/src/autocorr.rs crates/stats/src/batch_means.rs crates/stats/src/distributions.rs crates/stats/src/error.rs crates/stats/src/histogram.rs crates/stats/src/order_stats.rs crates/stats/src/rng.rs crates/stats/src/special.rs crates/stats/src/student_t.rs crates/stats/src/summary.rs Cargo.toml

crates/stats/src/lib.rs:
crates/stats/src/autocorr.rs:
crates/stats/src/batch_means.rs:
crates/stats/src/distributions.rs:
crates/stats/src/error.rs:
crates/stats/src/histogram.rs:
crates/stats/src/order_stats.rs:
crates/stats/src/rng.rs:
crates/stats/src/special.rs:
crates/stats/src/student_t.rs:
crates/stats/src/summary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
