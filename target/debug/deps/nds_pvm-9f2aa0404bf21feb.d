/root/repo/target/debug/deps/nds_pvm-9f2aa0404bf21feb.d: crates/pvm/src/lib.rs crates/pvm/src/apps.rs crates/pvm/src/apps/local_computation.rs crates/pvm/src/apps/sync_rounds.rs crates/pvm/src/daemon.rs crates/pvm/src/error.rs crates/pvm/src/group.rs crates/pvm/src/harness.rs crates/pvm/src/lan.rs crates/pvm/src/message.rs crates/pvm/src/task.rs crates/pvm/src/vm.rs Cargo.toml

/root/repo/target/debug/deps/libnds_pvm-9f2aa0404bf21feb.rmeta: crates/pvm/src/lib.rs crates/pvm/src/apps.rs crates/pvm/src/apps/local_computation.rs crates/pvm/src/apps/sync_rounds.rs crates/pvm/src/daemon.rs crates/pvm/src/error.rs crates/pvm/src/group.rs crates/pvm/src/harness.rs crates/pvm/src/lan.rs crates/pvm/src/message.rs crates/pvm/src/task.rs crates/pvm/src/vm.rs Cargo.toml

crates/pvm/src/lib.rs:
crates/pvm/src/apps.rs:
crates/pvm/src/apps/local_computation.rs:
crates/pvm/src/apps/sync_rounds.rs:
crates/pvm/src/daemon.rs:
crates/pvm/src/error.rs:
crates/pvm/src/group.rs:
crates/pvm/src/harness.rs:
crates/pvm/src/lan.rs:
crates/pvm/src/message.rs:
crates/pvm/src/task.rs:
crates/pvm/src/vm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
