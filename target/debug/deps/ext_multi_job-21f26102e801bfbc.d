/root/repo/target/debug/deps/ext_multi_job-21f26102e801bfbc.d: crates/bench/src/bin/ext_multi_job.rs

/root/repo/target/debug/deps/ext_multi_job-21f26102e801bfbc: crates/bench/src/bin/ext_multi_job.rs

crates/bench/src/bin/ext_multi_job.rs:
