/root/repo/target/debug/deps/ext_sched_policies-c6799f63597b6496.d: crates/bench/src/bin/ext_sched_policies.rs

/root/repo/target/debug/deps/ext_sched_policies-c6799f63597b6496: crates/bench/src/bin/ext_sched_policies.rs

crates/bench/src/bin/ext_sched_policies.rs:
