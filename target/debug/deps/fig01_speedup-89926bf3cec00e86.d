/root/repo/target/debug/deps/fig01_speedup-89926bf3cec00e86.d: crates/bench/src/bin/fig01_speedup.rs Cargo.toml

/root/repo/target/debug/deps/libfig01_speedup-89926bf3cec00e86.rmeta: crates/bench/src/bin/fig01_speedup.rs Cargo.toml

crates/bench/src/bin/fig01_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
