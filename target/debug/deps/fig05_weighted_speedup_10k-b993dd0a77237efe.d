/root/repo/target/debug/deps/fig05_weighted_speedup_10k-b993dd0a77237efe.d: crates/bench/src/bin/fig05_weighted_speedup_10k.rs Cargo.toml

/root/repo/target/debug/deps/libfig05_weighted_speedup_10k-b993dd0a77237efe.rmeta: crates/bench/src/bin/fig05_weighted_speedup_10k.rs Cargo.toml

crates/bench/src/bin/fig05_weighted_speedup_10k.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
