/root/repo/target/debug/deps/nds_core-1eb58090939cf117.d: crates/core/src/lib.rs crates/core/src/analyzer.rs crates/core/src/comparison.rs crates/core/src/conclusions.rs crates/core/src/error.rs crates/core/src/prelude.rs crates/core/src/report.rs crates/core/src/scenario.rs crates/core/src/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libnds_core-1eb58090939cf117.rmeta: crates/core/src/lib.rs crates/core/src/analyzer.rs crates/core/src/comparison.rs crates/core/src/conclusions.rs crates/core/src/error.rs crates/core/src/prelude.rs crates/core/src/report.rs crates/core/src/scenario.rs crates/core/src/sweep.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/analyzer.rs:
crates/core/src/comparison.rs:
crates/core/src/conclusions.rs:
crates/core/src/error.rs:
crates/core/src/prelude.rs:
crates/core/src/report.rs:
crates/core/src/scenario.rs:
crates/core/src/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
