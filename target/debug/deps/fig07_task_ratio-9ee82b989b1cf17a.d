/root/repo/target/debug/deps/fig07_task_ratio-9ee82b989b1cf17a.d: crates/bench/src/bin/fig07_task_ratio.rs

/root/repo/target/debug/deps/fig07_task_ratio-9ee82b989b1cf17a: crates/bench/src/bin/fig07_task_ratio.rs

crates/bench/src/bin/fig07_task_ratio.rs:
