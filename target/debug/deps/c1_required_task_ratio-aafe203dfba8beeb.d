/root/repo/target/debug/deps/c1_required_task_ratio-aafe203dfba8beeb.d: crates/bench/src/bin/c1_required_task_ratio.rs

/root/repo/target/debug/deps/c1_required_task_ratio-aafe203dfba8beeb: crates/bench/src/bin/c1_required_task_ratio.rs

crates/bench/src/bin/c1_required_task_ratio.rs:
