/root/repo/target/release/deps/nds_cluster-7030538a3198cecb.d: crates/cluster/src/lib.rs crates/cluster/src/config.rs crates/cluster/src/continuous.rs crates/cluster/src/discrete.rs crates/cluster/src/error.rs crates/cluster/src/experiment.rs crates/cluster/src/job.rs crates/cluster/src/multi.rs crates/cluster/src/owner.rs crates/cluster/src/probe.rs crates/cluster/src/smp.rs crates/cluster/src/task.rs

/root/repo/target/release/deps/libnds_cluster-7030538a3198cecb.rlib: crates/cluster/src/lib.rs crates/cluster/src/config.rs crates/cluster/src/continuous.rs crates/cluster/src/discrete.rs crates/cluster/src/error.rs crates/cluster/src/experiment.rs crates/cluster/src/job.rs crates/cluster/src/multi.rs crates/cluster/src/owner.rs crates/cluster/src/probe.rs crates/cluster/src/smp.rs crates/cluster/src/task.rs

/root/repo/target/release/deps/libnds_cluster-7030538a3198cecb.rmeta: crates/cluster/src/lib.rs crates/cluster/src/config.rs crates/cluster/src/continuous.rs crates/cluster/src/discrete.rs crates/cluster/src/error.rs crates/cluster/src/experiment.rs crates/cluster/src/job.rs crates/cluster/src/multi.rs crates/cluster/src/owner.rs crates/cluster/src/probe.rs crates/cluster/src/smp.rs crates/cluster/src/task.rs

crates/cluster/src/lib.rs:
crates/cluster/src/config.rs:
crates/cluster/src/continuous.rs:
crates/cluster/src/discrete.rs:
crates/cluster/src/error.rs:
crates/cluster/src/experiment.rs:
crates/cluster/src/job.rs:
crates/cluster/src/multi.rs:
crates/cluster/src/owner.rs:
crates/cluster/src/probe.rs:
crates/cluster/src/smp.rs:
crates/cluster/src/task.rs:
