/root/repo/target/release/deps/nds_stats-75d954fe57839558.d: crates/stats/src/lib.rs crates/stats/src/autocorr.rs crates/stats/src/batch_means.rs crates/stats/src/distributions.rs crates/stats/src/error.rs crates/stats/src/histogram.rs crates/stats/src/order_stats.rs crates/stats/src/rng.rs crates/stats/src/special.rs crates/stats/src/student_t.rs crates/stats/src/summary.rs

/root/repo/target/release/deps/libnds_stats-75d954fe57839558.rlib: crates/stats/src/lib.rs crates/stats/src/autocorr.rs crates/stats/src/batch_means.rs crates/stats/src/distributions.rs crates/stats/src/error.rs crates/stats/src/histogram.rs crates/stats/src/order_stats.rs crates/stats/src/rng.rs crates/stats/src/special.rs crates/stats/src/student_t.rs crates/stats/src/summary.rs

/root/repo/target/release/deps/libnds_stats-75d954fe57839558.rmeta: crates/stats/src/lib.rs crates/stats/src/autocorr.rs crates/stats/src/batch_means.rs crates/stats/src/distributions.rs crates/stats/src/error.rs crates/stats/src/histogram.rs crates/stats/src/order_stats.rs crates/stats/src/rng.rs crates/stats/src/special.rs crates/stats/src/student_t.rs crates/stats/src/summary.rs

crates/stats/src/lib.rs:
crates/stats/src/autocorr.rs:
crates/stats/src/batch_means.rs:
crates/stats/src/distributions.rs:
crates/stats/src/error.rs:
crates/stats/src/histogram.rs:
crates/stats/src/order_stats.rs:
crates/stats/src/rng.rs:
crates/stats/src/special.rs:
crates/stats/src/student_t.rs:
crates/stats/src/summary.rs:
