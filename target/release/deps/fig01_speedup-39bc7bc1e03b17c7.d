/root/repo/target/release/deps/fig01_speedup-39bc7bc1e03b17c7.d: crates/bench/src/bin/fig01_speedup.rs

/root/repo/target/release/deps/fig01_speedup-39bc7bc1e03b17c7: crates/bench/src/bin/fig01_speedup.rs

crates/bench/src/bin/fig01_speedup.rs:
