/root/repo/target/release/deps/ext_smp-8d7ddc893757085c.d: crates/bench/src/bin/ext_smp.rs

/root/repo/target/release/deps/ext_smp-8d7ddc893757085c: crates/bench/src/bin/ext_smp.rs

crates/bench/src/bin/ext_smp.rs:
