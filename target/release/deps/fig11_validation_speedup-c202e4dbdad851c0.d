/root/repo/target/release/deps/fig11_validation_speedup-c202e4dbdad851c0.d: crates/bench/src/bin/fig11_validation_speedup.rs

/root/repo/target/release/deps/fig11_validation_speedup-c202e4dbdad851c0: crates/bench/src/bin/fig11_validation_speedup.rs

crates/bench/src/bin/fig11_validation_speedup.rs:
