/root/repo/target/release/deps/nds-8eae803f97be3598.d: src/bin/nds.rs

/root/repo/target/release/deps/nds-8eae803f97be3598: src/bin/nds.rs

src/bin/nds.rs:
