/root/repo/target/release/deps/fig05_weighted_speedup_10k-1528054b69828104.d: crates/bench/src/bin/fig05_weighted_speedup_10k.rs

/root/repo/target/release/deps/fig05_weighted_speedup_10k-1528054b69828104: crates/bench/src/bin/fig05_weighted_speedup_10k.rs

crates/bench/src/bin/fig05_weighted_speedup_10k.rs:
