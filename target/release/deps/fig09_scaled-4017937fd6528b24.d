/root/repo/target/release/deps/fig09_scaled-4017937fd6528b24.d: crates/bench/src/bin/fig09_scaled.rs

/root/repo/target/release/deps/fig09_scaled-4017937fd6528b24: crates/bench/src/bin/fig09_scaled.rs

crates/bench/src/bin/fig09_scaled.rs:
