/root/repo/target/release/deps/c1_required_task_ratio-bf418106094d5a34.d: crates/bench/src/bin/c1_required_task_ratio.rs

/root/repo/target/release/deps/c1_required_task_ratio-bf418106094d5a34: crates/bench/src/bin/c1_required_task_ratio.rs

crates/bench/src/bin/c1_required_task_ratio.rs:
