/root/repo/target/release/deps/ext_no_guarantee-f15b9303241c2e9f.d: crates/bench/src/bin/ext_no_guarantee.rs

/root/repo/target/release/deps/ext_no_guarantee-f15b9303241c2e9f: crates/bench/src/bin/ext_no_guarantee.rs

crates/bench/src/bin/ext_no_guarantee.rs:
