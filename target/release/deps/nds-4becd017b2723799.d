/root/repo/target/release/deps/nds-4becd017b2723799.d: src/lib.rs

/root/repo/target/release/deps/libnds-4becd017b2723799.rlib: src/lib.rs

/root/repo/target/release/deps/libnds-4becd017b2723799.rmeta: src/lib.rs

src/lib.rs:
