/root/repo/target/release/deps/nds_des-f5f7e4c4452152c0.d: crates/des/src/lib.rs crates/des/src/engine.rs crates/des/src/error.rs crates/des/src/facility.rs crates/des/src/monitor.rs crates/des/src/resource.rs crates/des/src/time.rs crates/des/src/trace.rs

/root/repo/target/release/deps/libnds_des-f5f7e4c4452152c0.rlib: crates/des/src/lib.rs crates/des/src/engine.rs crates/des/src/error.rs crates/des/src/facility.rs crates/des/src/monitor.rs crates/des/src/resource.rs crates/des/src/time.rs crates/des/src/trace.rs

/root/repo/target/release/deps/libnds_des-f5f7e4c4452152c0.rmeta: crates/des/src/lib.rs crates/des/src/engine.rs crates/des/src/error.rs crates/des/src/facility.rs crates/des/src/monitor.rs crates/des/src/resource.rs crates/des/src/time.rs crates/des/src/trace.rs

crates/des/src/lib.rs:
crates/des/src/engine.rs:
crates/des/src/error.rs:
crates/des/src/facility.rs:
crates/des/src/monitor.rs:
crates/des/src/resource.rs:
crates/des/src/time.rs:
crates/des/src/trace.rs:
