/root/repo/target/release/deps/ext_variance-90db9407e7a688a0.d: crates/bench/src/bin/ext_variance.rs

/root/repo/target/release/deps/ext_variance-90db9407e7a688a0: crates/bench/src/bin/ext_variance.rs

crates/bench/src/bin/ext_variance.rs:
