/root/repo/target/release/deps/fig06_weighted_efficiency_10k-9526f72405ad8fe3.d: crates/bench/src/bin/fig06_weighted_efficiency_10k.rs

/root/repo/target/release/deps/fig06_weighted_efficiency_10k-9526f72405ad8fe3: crates/bench/src/bin/fig06_weighted_efficiency_10k.rs

crates/bench/src/bin/fig06_weighted_efficiency_10k.rs:
