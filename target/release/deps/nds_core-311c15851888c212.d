/root/repo/target/release/deps/nds_core-311c15851888c212.d: crates/core/src/lib.rs crates/core/src/analyzer.rs crates/core/src/comparison.rs crates/core/src/conclusions.rs crates/core/src/error.rs crates/core/src/prelude.rs crates/core/src/report.rs crates/core/src/scenario.rs crates/core/src/sweep.rs

/root/repo/target/release/deps/libnds_core-311c15851888c212.rlib: crates/core/src/lib.rs crates/core/src/analyzer.rs crates/core/src/comparison.rs crates/core/src/conclusions.rs crates/core/src/error.rs crates/core/src/prelude.rs crates/core/src/report.rs crates/core/src/scenario.rs crates/core/src/sweep.rs

/root/repo/target/release/deps/libnds_core-311c15851888c212.rmeta: crates/core/src/lib.rs crates/core/src/analyzer.rs crates/core/src/comparison.rs crates/core/src/conclusions.rs crates/core/src/error.rs crates/core/src/prelude.rs crates/core/src/report.rs crates/core/src/scenario.rs crates/core/src/sweep.rs

crates/core/src/lib.rs:
crates/core/src/analyzer.rs:
crates/core/src/comparison.rs:
crates/core/src/conclusions.rs:
crates/core/src/error.rs:
crates/core/src/prelude.rs:
crates/core/src/report.rs:
crates/core/src/scenario.rs:
crates/core/src/sweep.rs:
