/root/repo/target/release/deps/fig02_efficiency-073e0b45e43bffa8.d: crates/bench/src/bin/fig02_efficiency.rs

/root/repo/target/release/deps/fig02_efficiency-073e0b45e43bffa8: crates/bench/src/bin/fig02_efficiency.rs

crates/bench/src/bin/fig02_efficiency.rs:
