/root/repo/target/release/deps/fig08_task_ratio_sizes-93ff11a8bac22f89.d: crates/bench/src/bin/fig08_task_ratio_sizes.rs

/root/repo/target/release/deps/fig08_task_ratio_sizes-93ff11a8bac22f89: crates/bench/src/bin/fig08_task_ratio_sizes.rs

crates/bench/src/bin/fig08_task_ratio_sizes.rs:
