/root/repo/target/release/deps/ext_sched_policies-57e0583c55ab0b2a.d: crates/bench/src/bin/ext_sched_policies.rs

/root/repo/target/release/deps/ext_sched_policies-57e0583c55ab0b2a: crates/bench/src/bin/ext_sched_policies.rs

crates/bench/src/bin/ext_sched_policies.rs:
