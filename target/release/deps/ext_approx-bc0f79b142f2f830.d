/root/repo/target/release/deps/ext_approx-bc0f79b142f2f830.d: crates/bench/src/bin/ext_approx.rs

/root/repo/target/release/deps/ext_approx-bc0f79b142f2f830: crates/bench/src/bin/ext_approx.rs

crates/bench/src/bin/ext_approx.rs:
