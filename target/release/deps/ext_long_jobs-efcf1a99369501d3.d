/root/repo/target/release/deps/ext_long_jobs-efcf1a99369501d3.d: crates/bench/src/bin/ext_long_jobs.rs

/root/repo/target/release/deps/ext_long_jobs-efcf1a99369501d3: crates/bench/src/bin/ext_long_jobs.rs

crates/bench/src/bin/ext_long_jobs.rs:
