/root/repo/target/release/deps/ext_sync_rounds-3d2bee6de1d9a11d.d: crates/bench/src/bin/ext_sync_rounds.rs

/root/repo/target/release/deps/ext_sync_rounds-3d2bee6de1d9a11d: crates/bench/src/bin/ext_sync_rounds.rs

crates/bench/src/bin/ext_sync_rounds.rs:
