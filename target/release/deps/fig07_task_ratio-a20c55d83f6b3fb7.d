/root/repo/target/release/deps/fig07_task_ratio-a20c55d83f6b3fb7.d: crates/bench/src/bin/fig07_task_ratio.rs

/root/repo/target/release/deps/fig07_task_ratio-a20c55d83f6b3fb7: crates/bench/src/bin/fig07_task_ratio.rs

crates/bench/src/bin/fig07_task_ratio.rs:
