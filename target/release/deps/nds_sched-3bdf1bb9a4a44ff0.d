/root/repo/target/release/deps/nds_sched-3bdf1bb9a4a44ff0.d: crates/sched/src/lib.rs crates/sched/src/error.rs crates/sched/src/eviction.rs crates/sched/src/metrics.rs crates/sched/src/policy.rs crates/sched/src/pool.rs crates/sched/src/queue.rs crates/sched/src/simulator.rs

/root/repo/target/release/deps/libnds_sched-3bdf1bb9a4a44ff0.rlib: crates/sched/src/lib.rs crates/sched/src/error.rs crates/sched/src/eviction.rs crates/sched/src/metrics.rs crates/sched/src/policy.rs crates/sched/src/pool.rs crates/sched/src/queue.rs crates/sched/src/simulator.rs

/root/repo/target/release/deps/libnds_sched-3bdf1bb9a4a44ff0.rmeta: crates/sched/src/lib.rs crates/sched/src/error.rs crates/sched/src/eviction.rs crates/sched/src/metrics.rs crates/sched/src/policy.rs crates/sched/src/pool.rs crates/sched/src/queue.rs crates/sched/src/simulator.rs

crates/sched/src/lib.rs:
crates/sched/src/error.rs:
crates/sched/src/eviction.rs:
crates/sched/src/metrics.rs:
crates/sched/src/policy.rs:
crates/sched/src/pool.rs:
crates/sched/src/queue.rs:
crates/sched/src/simulator.rs:
