/root/repo/target/release/deps/fig04_weighted_efficiency-fd89c55d31aeceff.d: crates/bench/src/bin/fig04_weighted_efficiency.rs

/root/repo/target/release/deps/fig04_weighted_efficiency-fd89c55d31aeceff: crates/bench/src/bin/fig04_weighted_efficiency.rs

crates/bench/src/bin/fig04_weighted_efficiency.rs:
