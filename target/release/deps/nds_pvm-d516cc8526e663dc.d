/root/repo/target/release/deps/nds_pvm-d516cc8526e663dc.d: crates/pvm/src/lib.rs crates/pvm/src/apps.rs crates/pvm/src/apps/local_computation.rs crates/pvm/src/apps/sync_rounds.rs crates/pvm/src/daemon.rs crates/pvm/src/error.rs crates/pvm/src/group.rs crates/pvm/src/harness.rs crates/pvm/src/lan.rs crates/pvm/src/message.rs crates/pvm/src/task.rs crates/pvm/src/vm.rs

/root/repo/target/release/deps/libnds_pvm-d516cc8526e663dc.rlib: crates/pvm/src/lib.rs crates/pvm/src/apps.rs crates/pvm/src/apps/local_computation.rs crates/pvm/src/apps/sync_rounds.rs crates/pvm/src/daemon.rs crates/pvm/src/error.rs crates/pvm/src/group.rs crates/pvm/src/harness.rs crates/pvm/src/lan.rs crates/pvm/src/message.rs crates/pvm/src/task.rs crates/pvm/src/vm.rs

/root/repo/target/release/deps/libnds_pvm-d516cc8526e663dc.rmeta: crates/pvm/src/lib.rs crates/pvm/src/apps.rs crates/pvm/src/apps/local_computation.rs crates/pvm/src/apps/sync_rounds.rs crates/pvm/src/daemon.rs crates/pvm/src/error.rs crates/pvm/src/group.rs crates/pvm/src/harness.rs crates/pvm/src/lan.rs crates/pvm/src/message.rs crates/pvm/src/task.rs crates/pvm/src/vm.rs

crates/pvm/src/lib.rs:
crates/pvm/src/apps.rs:
crates/pvm/src/apps/local_computation.rs:
crates/pvm/src/apps/sync_rounds.rs:
crates/pvm/src/daemon.rs:
crates/pvm/src/error.rs:
crates/pvm/src/group.rs:
crates/pvm/src/harness.rs:
crates/pvm/src/lan.rs:
crates/pvm/src/message.rs:
crates/pvm/src/task.rs:
crates/pvm/src/vm.rs:
