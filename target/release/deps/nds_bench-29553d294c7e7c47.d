/root/repo/target/release/deps/nds_bench-29553d294c7e7c47.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/series.rs crates/bench/src/validation.rs

/root/repo/target/release/deps/libnds_bench-29553d294c7e7c47.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/series.rs crates/bench/src/validation.rs

/root/repo/target/release/deps/libnds_bench-29553d294c7e7c47.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/series.rs crates/bench/src/validation.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/series.rs:
crates/bench/src/validation.rs:
