/root/repo/target/release/deps/rand-663ffd497a44c427.d: crates/shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-663ffd497a44c427.rlib: crates/shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-663ffd497a44c427.rmeta: crates/shims/rand/src/lib.rs

crates/shims/rand/src/lib.rs:
