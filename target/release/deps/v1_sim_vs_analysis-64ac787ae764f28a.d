/root/repo/target/release/deps/v1_sim_vs_analysis-64ac787ae764f28a.d: crates/bench/src/bin/v1_sim_vs_analysis.rs

/root/repo/target/release/deps/v1_sim_vs_analysis-64ac787ae764f28a: crates/bench/src/bin/v1_sim_vs_analysis.rs

crates/bench/src/bin/v1_sim_vs_analysis.rs:
