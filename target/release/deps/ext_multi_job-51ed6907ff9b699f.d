/root/repo/target/release/deps/ext_multi_job-51ed6907ff9b699f.d: crates/bench/src/bin/ext_multi_job.rs

/root/repo/target/release/deps/ext_multi_job-51ed6907ff9b699f: crates/bench/src/bin/ext_multi_job.rs

crates/bench/src/bin/ext_multi_job.rs:
