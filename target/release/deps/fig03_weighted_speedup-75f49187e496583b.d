/root/repo/target/release/deps/fig03_weighted_speedup-75f49187e496583b.d: crates/bench/src/bin/fig03_weighted_speedup.rs

/root/repo/target/release/deps/fig03_weighted_speedup-75f49187e496583b: crates/bench/src/bin/fig03_weighted_speedup.rs

crates/bench/src/bin/fig03_weighted_speedup.rs:
