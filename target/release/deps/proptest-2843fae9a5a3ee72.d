/root/repo/target/release/deps/proptest-2843fae9a5a3ee72.d: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/strategy.rs crates/shims/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-2843fae9a5a3ee72.rlib: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/strategy.rs crates/shims/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-2843fae9a5a3ee72.rmeta: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/strategy.rs crates/shims/proptest/src/test_runner.rs

crates/shims/proptest/src/lib.rs:
crates/shims/proptest/src/strategy.rs:
crates/shims/proptest/src/test_runner.rs:
