/root/repo/target/release/deps/fig10_validation_time-c43587396e1e7dc0.d: crates/bench/src/bin/fig10_validation_time.rs

/root/repo/target/release/deps/fig10_validation_time-c43587396e1e7dc0: crates/bench/src/bin/fig10_validation_time.rs

crates/bench/src/bin/fig10_validation_time.rs:
