/root/repo/target/release/deps/ext_hetero-23c04587514b9889.d: crates/bench/src/bin/ext_hetero.rs

/root/repo/target/release/deps/ext_hetero-23c04587514b9889: crates/bench/src/bin/ext_hetero.rs

crates/bench/src/bin/ext_hetero.rs:
