/root/repo/target/release/examples/scheduler_playground-9bc1514dfd2d71d0.d: examples/scheduler_playground.rs

/root/repo/target/release/examples/scheduler_playground-9bc1514dfd2d71d0: examples/scheduler_playground.rs

examples/scheduler_playground.rs:
