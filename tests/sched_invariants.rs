//! Workspace-level invariants of the `nds-sched` scheduler:
//!
//! 1. **Work conservation** — every unit of CPU delivered to guest work
//!    is goodput, wasted, or checkpoint overhead; and goodput equals
//!    the workload's total demand once every job completes.
//! 2. **Degenerate equivalence** — a fixed full-size pool with
//!    suspend-resume eviction reproduces the single-job
//!    [`JobRunner`]/[`ContinuousWorkstation`] results of the paper's
//!    model, bit-for-bit (shared RNG stream derivation).
//! 3. **Deterministic replay** — identical configs replay identically;
//!    replications diverge.
//! 4. **Availability accounting** — the pool's downtime integral under
//!    arbitrary interleaved crash/repair/reclaim churn is non-negative,
//!    monotone in time, and exact against a shadow integral.

use nds::cluster::{ContinuousWorkstation, JobRunner, OwnerWorkload};
use nds::sched::{EvictionPolicy, JobSpec, PlacementKind, Pool, QueueDiscipline, SchedConfig};
use nds::stats::rng::StreamFactory;
use proptest::prelude::*;

fn owner(u: f64) -> OwnerWorkload {
    OwnerWorkload::continuous_exponential(10.0, u).unwrap()
}

fn all_policies() -> Vec<EvictionPolicy> {
    vec![
        EvictionPolicy::Restart,
        EvictionPolicy::SuspendResume,
        EvictionPolicy::Migrate { overhead: 4.0 },
        EvictionPolicy::Checkpoint {
            interval: 25.0,
            overhead: 1.0,
        },
    ]
}

#[test]
fn work_conservation_across_policies_and_utilizations() {
    for eviction in all_policies() {
        for u in [0.05, 0.10, 0.20] {
            for seed in [1u64, 2, 3] {
                let mut cfg = SchedConfig::homogeneous(
                    8,
                    &owner(u),
                    vec![JobSpec::at_zero(12, 90.0), JobSpec::at_zero(6, 45.0)],
                );
                cfg.eviction = eviction;
                cfg.seed = seed;
                cfg.discipline = if seed % 2 == 0 {
                    QueueDiscipline::SjfBackfill
                } else {
                    QueueDiscipline::Fcfs
                };
                let m = cfg.run().unwrap();
                assert!(
                    m.is_consistent(),
                    "{} U={u} seed={seed}: residual {}",
                    eviction.label(),
                    m.accounting_residual()
                );
                assert!(
                    (m.goodput - m.total_demand).abs() <= 1e-6 * m.total_demand,
                    "{} U={u} seed={seed}: goodput {} != demand {}",
                    eviction.label(),
                    m.goodput,
                    m.total_demand
                );
                assert_eq!(m.completed_tasks, 18);
                // Makespan can never beat a dedicated, instantly-placed run.
                assert!(m.makespan >= 90.0);
            }
        }
    }
}

#[test]
fn degenerate_config_reproduces_jobrunner_bit_for_bit() {
    // Full-size pool, one job with one task per machine, suspend-resume:
    // the scheduler degenerates to the paper's model. Machine i shares
    // JobRunner's per-station stream, so job times match exactly.
    for (seed, rep) in [(11u64, 0u64), (11, 3), (2024, 0)] {
        let w = 6u32;
        let demand = 250.0;
        let ow = owner(0.10);
        let mut cfg = SchedConfig::homogeneous(w, &ow, vec![JobSpec::at_zero(w, demand)]);
        cfg.eviction = EvictionPolicy::SuspendResume;
        cfg.seed = seed;
        cfg.replication = rep;
        let m = cfg.run().unwrap();

        let baseline = JobRunner::new(seed).run_continuous_job(&ow, demand, w, rep);
        assert_eq!(
            m.makespan,
            baseline.job_time(),
            "seed={seed} rep={rep}: scheduler {} vs JobRunner {}",
            m.makespan,
            baseline.job_time()
        );
        assert_eq!(m.jobs[0].response_time(), baseline.job_time());
        // Per-station equivalence against the underlying workstation
        // simulator, using the same stream derivation.
        let factory = StreamFactory::new(seed);
        let ws = ContinuousWorkstation::new(ow.clone());
        let per_station_max = (0..w)
            .map(|i| {
                let mut rng = factory.labeled_stream("ws-continuous", u64::from(i) << 32 | rep);
                ws.run_task(demand, &mut rng).execution_time
            })
            .fold(0.0f64, f64::max);
        assert_eq!(m.makespan, per_station_max);
    }
}

#[test]
fn degenerate_config_wastes_nothing() {
    let w = 10u32;
    let mut cfg = SchedConfig::homogeneous(w, &owner(0.15), vec![JobSpec::at_zero(w, 150.0)]);
    cfg.eviction = EvictionPolicy::SuspendResume;
    let m = cfg.run().unwrap();
    assert_eq!(m.wasted, 0.0);
    assert_eq!(m.checkpoint_overhead, 0.0);
    assert_eq!(m.placements, u64::from(w), "one placement per task");
    assert_eq!(m.mean_queue_wait, 0.0, "all tasks placed on arrival");
}

#[test]
fn deterministic_replay_under_fixed_seed() {
    for placement in PlacementKind::ALL {
        let mut cfg = SchedConfig::homogeneous(
            7,
            &owner(0.12),
            vec![
                JobSpec {
                    tasks: 9,
                    task_demand: 70.0,
                    arrival: 0.0,
                },
                JobSpec {
                    tasks: 5,
                    task_demand: 35.0,
                    arrival: 120.0,
                },
            ],
        );
        cfg.placement = placement;
        cfg.eviction = EvictionPolicy::Checkpoint {
            interval: 20.0,
            overhead: 0.5,
        };
        cfg.calibration_horizon = 5_000.0;
        cfg.seed = 77;
        let a = cfg.run().unwrap();
        let b = cfg.run().unwrap();
        assert_eq!(a, b, "{}: replay must be identical", placement.name());

        let mut shifted = cfg.clone();
        shifted.seed = 78;
        let c = shifted.run().unwrap();
        assert_ne!(
            a.makespan,
            c.makespan,
            "{}: different seeds must diverge",
            placement.name()
        );
    }
}

#[test]
fn eviction_cost_ordering_is_sane() {
    // At identical owner sample paths (common random numbers), restart
    // must waste at least as much as migrate, which wastes at least as
    // much as suspend-resume (zero).
    let run = |eviction| {
        let mut cfg = SchedConfig::homogeneous(8, &owner(0.20), vec![JobSpec::at_zero(16, 100.0)]);
        cfg.eviction = eviction;
        cfg.seed = 5;
        cfg.run().unwrap()
    };
    let suspend = run(EvictionPolicy::SuspendResume);
    let restart = run(EvictionPolicy::Restart);
    let ckpt = run(EvictionPolicy::Checkpoint {
        interval: 25.0,
        overhead: 1.0,
    });
    assert_eq!(suspend.wasted, 0.0);
    assert!(restart.wasted > 0.0);
    assert!(ckpt.checkpoint_overhead > 0.0);
    assert!(
        restart.delivered >= suspend.delivered,
        "restart re-serves lost work"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The pool's downtime integral under arbitrary interleaved
    /// crash / repair / owner-reclaim / occupancy churn: non-negative,
    /// monotone non-decreasing in time, bounded by the pool's total
    /// machine-time, and exactly equal to an independently tracked
    /// shadow integral — while down machines never leak back into the
    /// candidate index before repair.
    #[test]
    fn downtime_integral_is_monotone_and_exact_under_interleaving(
        w in 1u8..6,
        ops in proptest::collection::vec((0.0f64..5.0, 0u8..8, 0u8..6), 1..80),
    ) {
        let w = w as usize;
        let mut p = Pool::new(w, 1.0, 100.0, &[]);
        let mut t = 0.0;
        let mut down = vec![false; w];
        let mut shadow = 0.0;
        let mut prev = 0.0;
        for (dt, m, op) in ops {
            let m = m as usize % w;
            shadow += dt * down.iter().filter(|&&d| d).count() as f64;
            t += dt;
            match op {
                0 => p.owner_transition(t, m, true),
                1 => p.owner_transition(t, m, false),
                2 => p.set_occupied(t, m, true),
                3 => p.set_occupied(t, m, false),
                4 => {
                    p.set_down(t, m, true);
                    down[m] = true;
                }
                _ => {
                    p.set_down(t, m, false);
                    down[m] = false;
                }
            }
            let d = p.downtime(t);
            prop_assert!(d >= 0.0, "downtime integral went negative: {d}");
            prop_assert!(d >= prev, "downtime shrank: {prev} -> {d}");
            prop_assert!(
                d <= w as f64 * t + 1e-9,
                "downtime {d} exceeds pool machine-time {}",
                w as f64 * t
            );
            prop_assert!(
                (d - shadow).abs() <= 1e-9 * shadow.max(1.0),
                "integral {d} diverged from shadow {shadow}"
            );
            if t > 0.0 {
                let avail = p.mean_available(t);
                prop_assert!((0.0..=w as f64 + 1e-9).contains(&avail));
            }
            for c in p.candidates() {
                prop_assert!(!down[c.machine], "down machine {} offered", c.machine);
            }
            prev = d;
        }
    }
}
