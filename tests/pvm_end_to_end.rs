//! End-to-end PVM validation (Figures 10–11 shapes).

use nds::pvm::harness::ValidationHarness;

fn harness(reps: u32) -> ValidationHarness {
    ValidationHarness {
        utilization: 0.03,
        owner_demand: 10.0,
        replications: reps,
        seed: 1993,
    }
}

#[test]
fn fig10_shape_max_task_time_scales_down_with_w() {
    let h = harness(5);
    for demand in [4u32, 16] {
        let p1 = h.run_point(1, demand).unwrap();
        let p12 = h.run_point(12, demand).unwrap();
        // Fixed-size: twelve-way split must be far faster...
        assert!(p12.mean_max_task_time < p1.mean_max_task_time / 6.0);
        // ...but no faster than the dedicated split time.
        let dedicated = f64::from(demand) * 60.0 / 12.0;
        assert!(p12.mean_max_task_time >= dedicated * 0.999);
    }
}

#[test]
fn fig11_task_ratio_effect_small_jobs_lose_more() {
    // Paper §4: "the speedup for a job demand of 1 is lower than the
    // speedup for a job demand of 16" at 8-12 workstations, because the
    // task ratio is smaller. At 3% utilization the effect is subtle, so
    // average the speedup over W = 8..12 with healthy replications.
    let h = harness(40);
    let mean_speedup = |demand: u32| -> f64 {
        let base = h.run_point(1, demand).unwrap().mean_max_task_time;
        let mut acc = 0.0;
        for w in 8..=12 {
            acc += base / h.run_point(w, demand).unwrap().mean_max_task_time / f64::from(w);
        }
        acc / 5.0
    };
    let small = mean_speedup(1);
    let large = mean_speedup(16);
    assert!(
        large > small,
        "normalized speedup: demand 16 => {large:.3}, demand 1 => {small:.3}"
    );
}

#[test]
fn response_time_includes_messaging_overhead() {
    let h = harness(3);
    let p = h.run_point(8, 2).unwrap();
    assert!(p.mean_response_time > p.mean_max_task_time);
    // Ethernet-scale messaging for 8 tiny messages: well under a second.
    assert!(p.mean_response_time - p.mean_max_task_time < 1.0);
}

#[test]
fn grid_is_complete_and_reproducible() {
    let h = harness(2);
    let grid = h.run_grid(&[1, 2, 3], &[1, 2]).unwrap();
    assert_eq!(grid.len(), 6);
    let again = h.run_grid(&[1, 2, 3], &[1, 2]).unwrap();
    assert_eq!(grid, again);
}
