//! Property tests pinning the typed [`Calendar`] to the closure
//! [`Engine`] as its behavioural oracle: the two calendars must agree
//! on execution order (time, then insertion sequence), cancellation
//! semantics, and clock advancement for *any* schedule — including
//! ties, cancels, and events scheduled from inside handlers. The
//! pre-sorted backlog lane and the fire-and-forget `post` lane must be
//! indistinguishable from plain scheduling. This is the
//! engine-equivalence half of the event-core rewrite's correctness
//! argument; `tests/event_core_oracle.rs` is the end-to-end half.

use nds::des::{Calendar, Engine, SimTime};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

/// One scheduled event of the random workload: a start time, whether
/// it gets cancelled before anything runs, and an optional follow-up
/// the handler schedules at `now + delay` when it fires.
#[derive(Debug, Clone, Copy)]
struct Spec {
    time: u8,
    cancel: bool,
    followup: Option<u8>,
}

fn spec() -> impl Strategy<Value = Spec> {
    // Times in a tiny range so ties are common (the interesting case).
    (0u8..20, 0u8..2, 0u8..11).prop_map(|(time, cancel, follow)| Spec {
        time,
        cancel: cancel == 1,
        followup: (follow > 0).then_some(follow),
    })
}

/// Fired-event log: `(time, tag)` with tags >= 1000 marking follow-ups.
type Log = Vec<(f64, usize)>;

/// Run the workload on the closure engine.
fn run_engine(specs: &[Spec]) -> Log {
    let log: Rc<RefCell<Log>> = Rc::default();
    let mut engine = Engine::new();
    let mut handles = Vec::new();
    for (tag, s) in specs.iter().enumerate() {
        let log = Rc::clone(&log);
        let followup = s.followup;
        let id = engine
            .schedule(SimTime::new(f64::from(s.time)), move |e| {
                log.borrow_mut().push((e.now().as_f64(), tag));
                if let Some(delay) = followup {
                    let log = Rc::clone(&log);
                    e.schedule_in(SimTime::new(f64::from(delay)), move |e| {
                        log.borrow_mut().push((e.now().as_f64(), tag + 1000));
                    })
                    .unwrap();
                }
            })
            .unwrap();
        handles.push(id);
    }
    for (s, id) in specs.iter().zip(handles) {
        if s.cancel {
            assert!(engine.cancel(id));
        }
    }
    engine.run_to_quiescence(None);
    Rc::try_unwrap(log).unwrap().into_inner()
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    Main(usize),
    Follow(usize),
}

/// Run the same workload on the typed calendar; `post_followups`
/// routes the handler-scheduled events through the fire-and-forget
/// lane instead of the cancellable one (they must order identically).
fn run_calendar(specs: &[Spec], post_followups: bool) -> Log {
    let mut cal: Calendar<Ev> = Calendar::new();
    let mut handles = Vec::new();
    for (tag, s) in specs.iter().enumerate() {
        handles.push(
            cal.schedule(SimTime::new(f64::from(s.time)), Ev::Main(tag))
                .unwrap(),
        );
    }
    for (s, h) in specs.iter().zip(handles) {
        if s.cancel {
            assert!(cal.is_live(h));
            assert!(cal.cancel(h));
            assert!(!cal.cancel(h), "cancel is idempotent");
        }
    }
    let mut log = Log::new();
    while let Some((t, ev)) = cal.pop() {
        match ev {
            Ev::Main(tag) => {
                log.push((t.as_f64(), tag));
                if let Some(delay) = specs[tag].followup {
                    let at = SimTime::new(f64::from(delay));
                    if post_followups {
                        cal.post_in(at, Ev::Follow(tag)).unwrap();
                    } else {
                        cal.schedule_in(at, Ev::Follow(tag)).unwrap();
                    }
                }
            }
            Ev::Follow(tag) => log.push((t.as_f64(), tag + 1000)),
        }
    }
    assert!(cal.is_empty());
    log
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The typed calendar replays the closure engine exactly: same
    /// events, same times, same order — ties broken by insertion
    /// sequence on both sides, cancels honoured, follow-ups
    /// interleaved identically (through either scheduling lane).
    #[test]
    fn calendar_matches_engine_order(specs in proptest::collection::vec(spec(), 0..40)) {
        let oracle = run_engine(&specs);
        prop_assert_eq!(&run_calendar(&specs, false), &oracle);
        prop_assert_eq!(&run_calendar(&specs, true), &oracle);
    }

    /// A time-sorted arrival stream entering through the backlog lane
    /// ([`Calendar::schedule_sorted`]) pops in exactly the order plain
    /// scheduling would produce, however it interleaves with
    /// heap-scheduled events.
    #[test]
    fn backlog_lane_is_order_transparent(
        raw_arrivals in proptest::collection::vec(0u8..30, 0..20),
        heap_events in proptest::collection::vec(0u8..30, 0..20),
    ) {
        let mut arrivals = raw_arrivals;
        arrivals.sort_unstable();
        let mut plain: Calendar<u32> = Calendar::new();
        let mut lane: Calendar<u32> = Calendar::new();
        for (i, &t) in arrivals.iter().enumerate() {
            plain.schedule(SimTime::new(f64::from(t)), i as u32).unwrap();
        }
        lane.schedule_sorted(
            arrivals
                .iter()
                .enumerate()
                .map(|(i, &t)| (SimTime::new(f64::from(t)), i as u32)),
        )
        .unwrap();
        for (i, &t) in heap_events.iter().enumerate() {
            let tag = 1000 + i as u32;
            plain.schedule(SimTime::new(f64::from(t)), tag).unwrap();
            lane.schedule(SimTime::new(f64::from(t)), tag).unwrap();
        }
        prop_assert_eq!(plain.pending(), lane.pending());
        loop {
            let (a, b) = (plain.pop(), lane.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    /// Scheduling (or posting) into the past is rejected with the same
    /// typed error the engine raises, and never corrupts the calendar.
    #[test]
    fn schedule_in_past_rejected(t1 in 1u8..50, dt in 1u8..50) {
        let mut cal: Calendar<u8> = Calendar::new();
        cal.schedule(SimTime::new(f64::from(t1)), 0).unwrap();
        cal.pop().unwrap();
        let past = SimTime::new(f64::from(t1.saturating_sub(dt)));
        prop_assert!(matches!(
            cal.schedule(past, 1),
            Err(nds::des::DesError::ScheduleInPast { .. })
        ));
        prop_assert!(matches!(
            cal.post(past, 1),
            Err(nds::des::DesError::ScheduleInPast { .. })
        ));
        prop_assert!(cal.is_empty());
        prop_assert_eq!(cal.executed(), 1);
    }

    /// Generation safety: a cancelled handle stays dead through
    /// arbitrary slot reuse — it can never cancel the event that
    /// recycled its slot.
    #[test]
    fn stale_handles_never_resurrect(times in proptest::collection::vec(1u8..30, 1..20)) {
        let mut cal: Calendar<u32> = Calendar::new();
        let mut stale = Vec::new();
        for (i, &t) in times.iter().enumerate() {
            let h = cal.schedule(SimTime::new(f64::from(t)), i as u32).unwrap();
            cal.cancel(h);
            stale.push(h);
        }
        // Live events now reuse the retired slots.
        for (i, &t) in times.iter().enumerate() {
            cal.schedule(SimTime::new(f64::from(t)), 100 + i as u32).unwrap();
        }
        for h in stale {
            prop_assert!(!cal.is_live(h));
            prop_assert!(!cal.cancel(h), "stale handle revoked a live event");
        }
        let mut fired = 0;
        while cal.pop().is_some() {
            fired += 1;
        }
        prop_assert_eq!(fired, times.len());
    }
}
