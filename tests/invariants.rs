//! Property-based tests of the model's invariants (proptest).

use nds::cluster::discrete::DiscreteTaskSim;
use nds::model::binomial::Binomial;
use nds::model::distribution::JobTimeDistribution;
use nds::model::expectation::{expected_job_time_int, expected_task_time};
use nds::model::interference::InterferenceProfile;
use nds::model::metrics::evaluate;
use nds::model::params::{ModelInputs, OwnerParams, Workload};
use nds::stats::rng::Xoshiro256StarStar;
use proptest::prelude::*;

fn owner_strategy() -> impl Strategy<Value = OwnerParams> {
    // O in [1, 50], U in [0.005, 0.4], constrained so P < 1.
    (1.0f64..50.0, 0.005f64..0.4)
        .prop_filter("P must be < 1", |(o, u)| u / (o * (1.0 - u)) < 1.0)
        .prop_map(|(o, u)| OwnerParams::from_utilization(o, u).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn binomial_pmf_sums_to_one(n in 0u64..5_000, p in 0.0f64..1.0) {
        let b = Binomial::new(n, p);
        let total: f64 = b.pmf_slice().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&b.cdf(n / 2)));
    }

    #[test]
    fn binomial_cdf_monotone(n in 1u64..2_000, p in 0.001f64..0.999) {
        let b = Binomial::new(n, p);
        let mut prev = 0.0;
        for k in 0..=n {
            let c = b.cdf(k);
            prop_assert!(c >= prev - 1e-12);
            prev = c;
        }
        prop_assert!((b.cdf(n) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn job_time_bounds_hold(t in 1u64..2_000, w in 1u32..200, owner in owner_strategy()) {
        let e_j = expected_job_time_int(t, w, owner);
        // T <= E_j <= T + T*O (the paper's guarantee bounds).
        prop_assert!(e_j >= t as f64 - 1e-9);
        prop_assert!(e_j <= t as f64 * (1.0 + owner.demand()) + 1e-9);
    }

    #[test]
    fn job_time_dominates_task_time(t in 1u64..1_000, w in 1u32..100, owner in owner_strategy()) {
        let e_t = expected_task_time(t as f64, owner);
        let e_j = expected_job_time_int(t, w, owner);
        prop_assert!(e_j >= e_t - 1e-9 * e_t);
    }

    #[test]
    fn job_time_monotone_in_w(t in 1u64..500, owner in owner_strategy()) {
        let mut prev = 0.0;
        for w in [1u32, 2, 4, 8, 16, 32, 64] {
            let e = expected_job_time_int(t, w, owner);
            prop_assert!(e >= prev - 1e-9, "E_j fell at W={w}");
            prev = e;
        }
    }

    #[test]
    fn weighted_metrics_dominate(j in 100.0f64..50_000.0, w in 1u32..150, owner in owner_strategy()) {
        let inputs = ModelInputs::new(Workload::new(j, w).unwrap(), owner);
        let m = evaluate(&inputs);
        prop_assert!(m.weighted_speedup >= m.speedup);
        prop_assert!(m.weighted_efficiency >= m.efficiency);
        prop_assert!(m.efficiency > 0.0 && m.efficiency <= 1.0 + 1e-9);
        prop_assert!(m.weighted_efficiency <= 1.0 + 1e-6);
    }

    #[test]
    fn interference_max_pmf_is_distribution(t in 1u64..500, p in 0.0005f64..0.2, w in 1u32..100) {
        let prof = InterferenceProfile::new(t, p, w);
        let total: f64 = prof.max_pmf_slice().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-8);
        prop_assert!(prof.expected_max() >= prof.expected_per_task() - 1e-9);
        prop_assert!(prof.variance_of_max() >= -1e-12);
    }

    #[test]
    fn job_time_distribution_consistent(t in 1u64..300, w in 1u32..50, owner in owner_strategy()) {
        let d = JobTimeDistribution::new(t, w, owner);
        // Mean via distribution == eq. 7.
        let e_j = expected_job_time_int(t, w, owner);
        prop_assert!((d.mean() - e_j).abs() < 1e-6 * e_j.max(1.0));
        // Quantiles are ordered and within the support.
        let q50 = d.quantile(0.5);
        let q95 = d.quantile(0.95);
        prop_assert!(q50 <= q95 + 1e-12);
        prop_assert!(q95 <= d.worst_case() + 1e-12);
        prop_assert!(d.cdf(d.worst_case()) > 1.0 - 1e-9);
    }

    #[test]
    fn simulated_task_time_within_guarantee_bounds(
        t in 1u64..1_000,
        p in 0.0f64..0.5,
        seed in 0u64..u64::MAX,
    ) {
        let sim = DiscreteTaskSim::paper(t, p, 10.0);
        let mut rng = Xoshiro256StarStar::new(seed);
        let out = sim.run_task(&mut rng);
        prop_assert!(out.execution_time >= t as f64);
        prop_assert!(out.execution_time <= t as f64 * 11.0 + 1e-9);
        prop_assert!(out.is_consistent());
        prop_assert!(out.interruptions <= t);
    }

    #[test]
    fn utilization_round_trip(o in 0.5f64..100.0, u in 0.001f64..0.5) {
        prop_assume!(u / (o * (1.0 - u)) < 1.0);
        let owner = OwnerParams::from_utilization(o, u).unwrap();
        prop_assert!((owner.utilization() - u).abs() < 1e-10);
    }

    #[test]
    fn scaled_problem_time_independent_of_w_only_through_max(
        t0 in 10u64..300,
        owner in owner_strategy(),
    ) {
        // For scaled problems E_j(W) is nondecreasing but bounded by the
        // worst case of a single task.
        let base = expected_job_time_int(t0, 1, owner);
        let big = expected_job_time_int(t0, 128, owner);
        prop_assert!(big >= base - 1e-9);
        prop_assert!(big <= t0 as f64 * (1.0 + owner.demand()) + 1e-9);
    }
}
