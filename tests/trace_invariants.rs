//! Flight-recorder invariants: traced runs must *reconcile* with the
//! engine's own accounting, stay deterministic across shard counts,
//! and emit well-formed artifacts.
//!
//! The records in a trace carry only simulation state (host
//! nanoseconds live in the profiler, never in the JSONL/Chrome
//! output), so two runs of the same configuration — on one thread or
//! four — must produce byte-identical traces. That is the property
//! that makes traces diffable artifacts rather than log soup.

use nds::core::sim::{closed, poisson, JobShape, Sim};
use nds::sched::{GangPolicy, JobSpec, ObsKind};
use nds_cluster::owner::OwnerWorkload;

fn owner(u: f64) -> OwnerWorkload {
    OwnerWorkload::continuous_exponential(10.0, u).unwrap()
}

fn sched_sim(replications: u64, shards: usize) -> Sim {
    Sim::pool(16)
        .owners(owner(0.12))
        .workload(closed(JobSpec::stream(24, 4, 40.0, 8.0)))
        .seed(2024)
        .replications(replications)
        .shards(shards)
        .metrics_every(50.0)
        .build()
        .unwrap()
}

fn gang_sim(shards: usize) -> Sim {
    Sim::pool(16)
        .owners(owner(0.15))
        .workload(closed(JobSpec::stream(12, 6, 60.0, 20.0)))
        .gang(GangPolicy::SuspendAll)
        .seed(7)
        .replications(2)
        .shards(shards)
        .metrics_every(100.0)
        .build()
        .unwrap()
}

/// The trace's final state sample must agree with the metrics the
/// engine reports — goodput and wasted to 1e-9 — and the profiler must
/// have attributed every executed event exactly once.
#[test]
fn trace_reconciles_with_sched_metrics() {
    for flight in sched_sim(2, 1).run_flight().unwrap() {
        let last = flight.recorder.final_sample().expect("samples exist");
        assert!(
            (last.goodput - flight.metrics.goodput).abs() < 1e-9,
            "rep {}: trace goodput {} vs metrics {}",
            flight.replication,
            last.goodput,
            flight.metrics.goodput
        );
        assert!(
            (last.wasted - flight.metrics.wasted).abs() < 1e-9,
            "rep {}: trace wasted {} vs metrics {}",
            flight.replication,
            last.wasted,
            flight.metrics.wasted
        );
        assert_eq!(
            flight.recorder.profiler().total_count(),
            flight.events,
            "rep {}: profiler must count every executed event",
            flight.replication
        );
        assert!(flight.events > 0 && !flight.recorder.events().is_empty());
    }
}

/// Gang traces reconcile too — the gang engine threads the tracer
/// through a different set of handlers (co-allocation, suspend-all
/// reclaim, partial floors).
#[test]
fn gang_trace_reconciles() {
    for flight in gang_sim(1).run_flight().unwrap() {
        let last = flight.recorder.final_sample().expect("samples exist");
        assert!((last.goodput - flight.metrics.goodput).abs() < 1e-9);
        assert!((last.wasted - flight.metrics.wasted).abs() < 1e-9);
        assert_eq!(flight.recorder.profiler().total_count(), flight.events);
    }
}

/// A flight-recorded run must report the same metrics as the untraced
/// engine: tracing observes, never perturbs. `Debug` formatting of
/// `SchedMetrics` round-trips every float, so string equality is bit
/// equality.
#[test]
fn traced_metrics_bit_identical_to_untraced() {
    let sim = sched_sim(2, 1);
    let report = sim.run().unwrap();
    let flights = sim.run_flight().unwrap();
    assert_eq!(report.runs.len(), flights.len());
    for (plain, flight) in report.runs.iter().zip(&flights) {
        assert_eq!(
            format!("{plain:?}"),
            format!("{:?}", flight.metrics),
            "rep {}",
            flight.replication
        );
    }
}

/// Satellite 2: shards(1) and shards(4) must produce byte-identical
/// artifacts for every replication — JSONL, Chrome JSON, metrics
/// time-series, and the event counts (host-time profiles are excluded:
/// they are the one artifact allowed to vary across runs).
#[test]
fn traces_byte_identical_across_shards() {
    let serial = sched_sim(4, 1).run_flight().unwrap();
    let sharded = sched_sim(4, 4).run_flight().unwrap();
    assert_eq!(serial.len(), sharded.len());
    for (a, b) in serial.iter().zip(&sharded) {
        assert_eq!(a.replication, b.replication);
        assert_eq!(a.events, b.events, "rep {}", a.replication);
        assert_eq!(a.to_jsonl(), b.to_jsonl(), "rep {}", a.replication);
        assert_eq!(
            a.to_chrome_json(),
            b.to_chrome_json(),
            "rep {}",
            a.replication
        );
        assert_eq!(a.metrics_json(), b.metrics_json(), "rep {}", a.replication);
    }

    let serial = gang_sim(1).run_flight().unwrap();
    let sharded = gang_sim(2).run_flight().unwrap();
    for (a, b) in serial.iter().zip(&sharded) {
        assert_eq!(a.to_jsonl(), b.to_jsonl(), "gang rep {}", a.replication);
        assert_eq!(
            a.to_chrome_json(),
            b.to_chrome_json(),
            "gang rep {}",
            a.replication
        );
    }
}

/// Every JSONL line is a single flat JSON object with the two fields
/// every record shares: a finite timestamp and a type tag.
#[test]
fn jsonl_schema_sanity() {
    let flights = sched_sim(1, 1).run_flight().unwrap();
    let jsonl = flights[0].to_jsonl();
    let mut lines = 0usize;
    for line in jsonl.lines() {
        lines += 1;
        assert!(
            line.starts_with("{\"t\":") && line.ends_with('}'),
            "malformed JSONL line: {line}"
        );
        assert!(
            line.contains("\"type\":\""),
            "record missing type tag: {line}"
        );
        let t: f64 = line["{\"t\":".len()..]
            .split(',')
            .next()
            .unwrap()
            .parse()
            .expect("timestamp parses");
        assert!(t.is_finite() && t >= 0.0, "bad timestamp in: {line}");
    }
    assert_eq!(lines, flights[0].recorder.events().len());
}

/// The Chrome trace must be one JSON object with a `traceEvents`
/// array, per-machine track names, and span begin/end balance per
/// track (every B has a matching E).
#[test]
fn chrome_trace_well_formed() {
    let flights = sched_sim(1, 1).run_flight().unwrap();
    let chrome = flights[0].to_chrome_json();
    assert!(chrome.starts_with("{\"traceEvents\":["));
    assert!(chrome.trim_end().ends_with("]}"));
    assert!(chrome.contains("\"thread_name\""));
    assert!(chrome.contains("machine 0"));
    let begins = chrome.matches("\"ph\":\"B\"").count();
    let ends = chrome.matches("\"ph\":\"E\"").count();
    assert_eq!(begins, ends, "unbalanced span begin/end");
    assert!(begins > 0, "expected at least one segment span");
}

/// Pull the `samples` array of one named series out of the registry
/// JSON. A ten-line parser beats depending on serde for one test.
fn series_samples(json: &str, name: &str) -> Vec<f64> {
    let at = json
        .find(&format!("\"name\":\"{name}\""))
        .unwrap_or_else(|| panic!("missing series {name}"));
    let tail = &json[at..];
    let start = tail.find("\"samples\":[").expect("samples array") + "\"samples\":[".len();
    let end = tail[start..].find(']').expect("closing bracket") + start;
    tail[start..end]
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| s.parse().expect("sample parses"))
        .collect()
}

/// The metrics registry exports all eleven series — seven gauges and
/// counters plus the four quantile-sketch histograms — on a shared
/// tick grid that ends at the makespan, and its counters are monotone.
#[test]
fn metrics_registry_series_complete() {
    let flights = sched_sim(1, 1).run_flight().unwrap();
    let flight = &flights[0];
    let json = flight.metrics_json();
    for series in [
        "queue_depth",
        "free_machines",
        "running_gangs",
        "degraded_gangs",
        "pending_events",
        "goodput",
        "wasted",
        "response",
        "queue_wait",
        "slowdown",
        "coalloc_wait",
    ] {
        assert_eq!(
            series_samples(&json, series).len(),
            flight.recorder.registry().ticks().len(),
            "series {series} must align with the tick grid"
        );
    }
    let ticks = flight.recorder.registry().ticks();
    assert!(
        ticks.windows(2).all(|w| w[1] > w[0]),
        "ticks strictly increase"
    );
    assert!(
        (ticks.last().unwrap() - flight.metrics.makespan).abs() < 1e-12,
        "grid must end at the makespan"
    );
    for name in ["goodput", "wasted"] {
        let samples = series_samples(&json, name);
        assert!(
            samples.windows(2).all(|w| w[1] >= w[0] - 1e-12),
            "{name} must be monotone non-decreasing"
        );
    }
    // Histogram series sample the cumulative observation count — also
    // monotone — and declare their kind in the export.
    assert!(
        json.contains("\"kind\":\"histogram\""),
        "histogram series must be tagged in the metrics JSON"
    );
    for name in ["response", "queue_wait", "slowdown"] {
        let samples = series_samples(&json, name);
        assert!(
            samples.windows(2).all(|w| w[1] >= w[0]),
            "{name} observation count must be monotone non-decreasing"
        );
        assert!(
            *samples.last().unwrap() > 0.0,
            "{name} must record at least one observation"
        );
    }
}

/// Tentpole oracle: the quantile sketches are deterministic down to
/// the bucket level. Two runs of the same configuration must produce
/// bit-identical bucket maps, counts, and extrema for every
/// observation kind — the property that makes sketch output diffable
/// across machines and shard counts.
#[test]
fn sketch_buckets_bit_identical_across_runs() {
    let a = sched_sim(2, 1).run_flight().unwrap();
    let b = sched_sim(2, 4).run_flight().unwrap();
    assert_eq!(a.len(), b.len());
    for (fa, fb) in a.iter().zip(&b) {
        for kind in ObsKind::ALL {
            let (sa, sb) = (fa.recorder.sketch(kind), fb.recorder.sketch(kind));
            assert_eq!(
                sa.buckets().collect::<Vec<_>>(),
                sb.buckets().collect::<Vec<_>>(),
                "rep {}: {} buckets must be bit-identical",
                fa.replication,
                kind.name()
            );
            assert_eq!(sa.count(), sb.count());
            assert_eq!(
                sa.min().map(f64::to_bits),
                sb.min().map(f64::to_bits),
                "rep {}: {} min",
                fa.replication,
                kind.name()
            );
            assert_eq!(
                sa.max().map(f64::to_bits),
                sb.max().map(f64::to_bits),
                "rep {}: {} max",
                fa.replication,
                kind.name()
            );
        }
    }
}

fn cheap_sim(shards: usize) -> Sim {
    Sim::pool(16)
        .owners(owner(0.12))
        .workload(closed(JobSpec::stream(24, 4, 40.0, 8.0)))
        .seed(2024)
        .replications(3)
        .shards(shards)
        .metrics_every(50.0)
        .trace_cheap(true)
        .build()
        .unwrap()
}

fn ring_sim(shards: usize) -> Sim {
    Sim::pool(16)
        .owners(owner(0.12))
        .workload(closed(JobSpec::stream(24, 4, 40.0, 8.0)))
        .seed(2024)
        .replications(3)
        .shards(shards)
        .metrics_every(50.0)
        .trace_capacity(64)
        .build()
        .unwrap()
}

/// The shard-count byte-identity oracle must survive the filtered
/// cheap tier: 1-in-N sampling is keyed on per-class sequence
/// counters, never on host state, so shards(1) and shards(4) emit the
/// same filtered records and the same sketch-backed metrics.
#[test]
fn cheap_traces_byte_identical_across_shards() {
    let serial = cheap_sim(1).run_flight().unwrap();
    let sharded = cheap_sim(4).run_flight().unwrap();
    assert_eq!(serial.len(), sharded.len());
    for (a, b) in serial.iter().zip(&sharded) {
        assert_eq!(a.replication, b.replication);
        assert_eq!(a.events, b.events, "rep {}", a.replication);
        assert_eq!(a.to_jsonl(), b.to_jsonl(), "rep {}", a.replication);
        assert_eq!(a.metrics_json(), b.metrics_json(), "rep {}", a.replication);
        // The cheap filter really filters: fewer records than events.
        let kept = a.recorder.events().len() as u64;
        assert!(
            kept > 0 && kept < a.events,
            "rep {}: cheap tier kept {kept} of {} events",
            a.replication,
            a.events
        );
    }
}

/// Ring-buffer recording is deterministic too: the same records are
/// overwritten on one shard as on four, and the survivors plus the
/// overwritten count appear byte-identically in the artifacts.
#[test]
fn ring_traces_byte_identical_across_shards() {
    let serial = ring_sim(1).run_flight().unwrap();
    let sharded = ring_sim(4).run_flight().unwrap();
    assert_eq!(serial.len(), sharded.len());
    for (a, b) in serial.iter().zip(&sharded) {
        assert_eq!(a.replication, b.replication);
        assert_eq!(
            a.recorder.overwritten(),
            b.recorder.overwritten(),
            "rep {}",
            a.replication
        );
        assert!(
            a.recorder.overwritten() > 0,
            "rep {}: capacity 64 must force overwrites",
            a.replication
        );
        assert_eq!(a.recorder.events().len(), 64, "rep {}", a.replication);
        assert_eq!(a.to_jsonl(), b.to_jsonl(), "rep {}", a.replication);
        assert_eq!(a.metrics_json(), b.metrics_json(), "rep {}", a.replication);
        assert!(
            a.metrics_json().contains("\"records_overwritten\":"),
            "overwrite count must be reported, never silent"
        );
    }
}

/// Open-stream traces reconcile as well, and the per-machine owner
/// tallies account for every owner arrival record.
#[test]
fn open_stream_trace_accounting() {
    let sim = Sim::pool(8)
        .owners(owner(0.10))
        .workload(poisson(0.02, JobShape::new(2, 30.0)).jobs(40).warmup(0))
        .seed(11)
        .metrics_every(200.0)
        .build()
        .unwrap();
    let flights = sim.run_flight().unwrap();
    let flight = &flights[0];
    let last = flight.recorder.final_sample().unwrap();
    assert!((last.goodput - flight.metrics.goodput).abs() < 1e-9);
    assert!((last.wasted - flight.metrics.wasted).abs() < 1e-9);
    let tallied: u64 = flight.recorder.owner_arrivals().iter().sum();
    let recorded = flight
        .recorder
        .events()
        .iter()
        .filter(|(_, r)| r.kind_name() == "owner_arrival")
        .count() as u64;
    assert_eq!(
        tallied, recorded,
        "per-machine tallies must cover every arrival"
    );
}
