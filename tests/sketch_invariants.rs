//! Property tests for [`QuantileSketch`]: the advertised relative
//! error bound (γ = `QuantileSketch::GAMMA`) holds against an exact
//! nearest-rank quantile computed by sorting, and quantiles are
//! monotone in `q`.

use nds::des::QuantileSketch;
use proptest::prelude::*;

/// Exact nearest-rank quantile: the value of rank `ceil(q·n)` (1-based)
/// in sorted order — the same rank convention the sketch uses.
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len() as u64;
    #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[usize::try_from(rank - 1).expect("rank fits usize")]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantiles_within_gamma_of_exact_sort(
        values in proptest::collection::vec(1e-6f64..1e9, 1..400),
    ) {
        let mut sk = QuantileSketch::new();
        for &v in &values {
            sk.observe(v);
        }
        prop_assert_eq!(sk.count(), values.len() as u64);
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        for q in [0.0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            let exact = exact_quantile(&sorted, q);
            let est = sk.quantile(q).expect("nonempty sketch");
            prop_assert!(
                (est - exact).abs() <= QuantileSketch::GAMMA * exact,
                "q={}: estimate {} vs exact {} (gamma {})",
                q, est, exact, QuantileSketch::GAMMA
            );
        }
    }

    #[test]
    fn quantiles_are_monotone_in_q(
        values in proptest::collection::vec(1e-3f64..1e6, 1..200),
    ) {
        let mut sk = QuantileSketch::new();
        for &v in &values {
            sk.observe(v);
        }
        let qs = [0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0];
        let ests: Vec<f64> = qs
            .iter()
            .map(|&q| sk.quantile(q).expect("nonempty sketch"))
            .collect();
        for w in ests.windows(2) {
            prop_assert!(w[0] <= w[1], "quantiles not monotone: {:?}", ests);
        }
    }
}
