//! Workspace-level invariants of the gang-scheduling subsystem:
//!
//! 1. **Degenerate equivalence** — with the gang policy off, or with
//!    gangs of one task, the scheduler's output is **bit-for-bit**
//!    identical to the independent-task engine.
//! 2. **Boundary equivalence of partial gangs** — the `min_running`
//!    floor interpolates between the two existing engines, and at the
//!    boundaries it *is* them, bit-for-bit: `Partial { min_running: 1 }`
//!    on gangs of independent semantics (single-task gangs) equals
//!    `GangPolicy::Off`, and `Partial { min_running: k }` equals
//!    `SuspendAll` on arbitrary configurations — every float of every
//!    metric, across randomized pools, workloads, placements, and
//!    disciplines.
//! 3. **Lockstep / floor** — at every event, all tasks of an
//!    all-or-nothing job share one run/suspend state, and a partial
//!    gang never runs below its floor; the engine re-verifies both at
//!    every gang event and the property tests assert both violation
//!    counters stay zero across random configurations.
//! 4. **Work conservation** — gang runs keep
//!    `delivered == goodput + wasted + checkpoint_overhead` and finish
//!    with `goodput == total demand`, like every other policy.
//! 5. **Composition** — gangs work under open Poisson streams, and
//!    sharded replication sweeps reproduce the serial report exactly,
//!    including on the `Scenario::GangPool` lowering.
//!
//! The bit-for-bit checks all go through one shared oracle-comparison
//! harness ([`assert_matches_oracle`]) instead of per-test loops, so
//! every equivalence claim compares the same things the same way.

use nds::core::scenario::Scenario;
use nds::core::sim::{closed, poisson, Backend, JobShape, Sim};
use nds::sched::{
    EvictionPolicy, GangPolicy, GangStats, JobSpec, PlacementKind, QueueDiscipline, SchedConfig,
    SchedMetrics,
};
use nds_cluster::owner::OwnerWorkload;
use proptest::prelude::*;

fn owner(u: f64) -> OwnerWorkload {
    OwnerWorkload::continuous_exponential(10.0, u).unwrap()
}

/// Metrics with the gang block zeroed, for comparing gang runs against
/// the independent engine (everything else must match exactly).
fn strip_gang(m: SchedMetrics) -> SchedMetrics {
    SchedMetrics {
        gang: GangStats::default(),
        ..m
    }
}

/// Shared oracle-comparison harness: run `base` with `subject` as its
/// gang policy and again after `oracle` rewrites the config (typically
/// to another gang policy, or to the independent engine), then assert
/// the two reports are **bit-for-bit identical**. When the oracle is a
/// non-gang engine its report carries no gang block, so the subject's
/// gang-only metrics are stripped before comparing; gang-vs-gang
/// comparisons keep every field. Returns the subject's metrics for
/// follow-on assertions.
fn assert_matches_oracle(
    base: &SchedConfig,
    subject: GangPolicy,
    oracle: impl FnOnce(&mut SchedConfig),
    label: &str,
) -> SchedMetrics {
    let mut subject_cfg = base.clone();
    subject_cfg.gang = subject;
    let subject_m = subject_cfg.run().unwrap();
    let mut oracle_cfg = base.clone();
    oracle(&mut oracle_cfg);
    let oracle_m = oracle_cfg.run().unwrap();
    if oracle_cfg.gang.is_on() {
        assert_eq!(subject_m, oracle_m, "{label}");
    } else {
        assert_eq!(strip_gang(subject_m.clone()), oracle_m, "{label}");
    }
    subject_m
}

/// The independent-engine oracle: gang off, owner returns resolved by
/// `eviction`.
fn independent(eviction: EvictionPolicy) -> impl FnOnce(&mut SchedConfig) {
    move |cfg: &mut SchedConfig| {
        cfg.gang = GangPolicy::Off;
        cfg.eviction = eviction;
    }
}

/// Every (placement, discipline) combination the engines support.
fn policy_grid() -> impl Iterator<Item = (PlacementKind, QueueDiscipline)> {
    PlacementKind::ALL.into_iter().flat_map(|p| {
        [QueueDiscipline::Fcfs, QueueDiscipline::SjfBackfill]
            .into_iter()
            .map(move |d| (p, d))
    })
}

/// Six staggered single-task jobs — "gangs of independent semantics":
/// with one task per gang, co-allocation is ordinary placement and a
/// `min_running` floor of one is vacuous.
fn single_task_jobs() -> Vec<JobSpec> {
    (0..6)
        .map(|j| JobSpec {
            tasks: 1,
            task_demand: 40.0 + 15.0 * f64::from(j),
            arrival: 25.0 * f64::from(j),
        })
        .collect()
}

#[test]
fn gang_policy_off_is_bit_for_bit_the_independent_engine() {
    // The dedicated acceptance test: the gang-capable engine with the
    // policy off must be indistinguishable from the pre-gang engine —
    // which the degenerate JobRunner equivalence (sched_invariants)
    // pins to the paper's model. Here: a builder run with the knob
    // explicitly off equals one that never mentions gangs, across
    // eviction policies and backends.
    for eviction in [
        EvictionPolicy::SuspendResume,
        EvictionPolicy::Restart,
        EvictionPolicy::Checkpoint {
            interval: 25.0,
            overhead: 1.0,
        },
    ] {
        let build = |with_knob: bool| {
            let mut sim = Sim::pool(6)
                .owners(owner(0.15))
                .eviction(eviction)
                .workload(closed(vec![
                    JobSpec::at_zero(10, 80.0),
                    JobSpec::at_zero(4, 40.0),
                ]))
                .seed(99)
                .replications(2)
                .backend(Backend::Sched);
            if with_knob {
                sim = sim.gang(GangPolicy::Off);
            }
            sim.run().unwrap()
        };
        assert_eq!(build(true), build(false), "{}", eviction.label());
    }
}

#[test]
fn gang_of_one_task_is_bit_for_bit_the_independent_scheduler() {
    // Gangs of one task: co-allocation degenerates to ordinary
    // placement, suspend-all to suspend-resume, and migrate-all to
    // per-task migration — bit-for-bit, for every placement policy and
    // queue discipline.
    let pairs = [
        (GangPolicy::SuspendAll, EvictionPolicy::SuspendResume),
        (
            GangPolicy::MigrateAll { overhead: 3.0 },
            EvictionPolicy::Migrate { overhead: 3.0 },
        ),
    ];
    for (gang_policy, eviction) in pairs {
        for (placement, discipline) in policy_grid() {
            let mut base = SchedConfig::homogeneous(4, &owner(0.20), single_task_jobs());
            base.placement = placement;
            base.discipline = discipline;
            base.calibration_horizon = 5_000.0;
            base.seed = 71;
            let gang = assert_matches_oracle(
                &base,
                gang_policy,
                independent(eviction),
                &format!(
                    "{} / {} / {}",
                    gang_policy.label(),
                    placement.name(),
                    discipline.name()
                ),
            );
            assert_eq!(gang.gang.barrier_stall, 0.0, "no peers to stall behind");
            assert_eq!(gang.gang.lockstep_violations, 0);
        }
    }
}

#[test]
fn partial_floor_one_on_single_task_gangs_is_the_independent_engine() {
    // Boundary one of the partial-gang spectrum:
    // `Partial { min_running: 1 }` on gangs of independent semantics
    // (one task each) is the independent suspend-resume engine,
    // bit-for-bit, across every placement policy and discipline.
    for (placement, discipline) in policy_grid() {
        let mut base = SchedConfig::homogeneous(4, &owner(0.20), single_task_jobs());
        base.placement = placement;
        base.discipline = discipline;
        base.calibration_horizon = 5_000.0;
        base.seed = 71;
        let m = assert_matches_oracle(
            &base,
            GangPolicy::Partial { min_running: 1 },
            independent(EvictionPolicy::SuspendResume),
            &format!("partial(1) / {} / {}", placement.name(), discipline.name()),
        );
        assert_eq!(m.gang.floor_violations, 0);
        assert_eq!(
            m.gang.degraded_time, 0.0,
            "a one-task gang is never below full width"
        );
    }
}

#[test]
fn partial_floor_at_width_is_bit_for_bit_suspend_all() {
    // Boundary two: `Partial { min_running: k }` (the floor clamps to
    // each gang's width) is `SuspendAll`, bit-for-bit including every
    // gang metric, across the policy grid on a contended multi-gang
    // mix — and so is the fractional spelling with frac 1.0.
    let jobs = vec![
        JobSpec::at_zero(4, 60.0),
        JobSpec {
            tasks: 6,
            task_demand: 40.0,
            arrival: 30.0,
        },
        JobSpec {
            tasks: 2,
            task_demand: 80.0,
            arrival: 60.0,
        },
    ];
    for (placement, discipline) in policy_grid() {
        let mut base = SchedConfig::homogeneous(8, &owner(0.15), jobs.clone());
        base.placement = placement;
        base.discipline = discipline;
        base.seed = 424;
        for subject in [
            GangPolicy::Partial {
                min_running: u32::MAX,
            },
            GangPolicy::PartialFrac {
                min_running_frac: 1.0,
            },
        ] {
            let m = assert_matches_oracle(
                &base,
                subject,
                |cfg| cfg.gang = GangPolicy::SuspendAll,
                &format!(
                    "{} / {} / {}",
                    subject.label(),
                    placement.name(),
                    discipline.name()
                ),
            );
            assert_eq!(m.gang.floor_violations, 0);
            assert_eq!(m.gang.degraded_time, 0.0, "full floors never degrade");
        }
    }
}

#[test]
fn gangs_compose_with_open_poisson_streams() {
    let report = Sim::pool(8)
        .owners(owner(0.10))
        .gang(GangPolicy::SuspendAll)
        .workload(poisson(0.015, JobShape::new(4, 40.0)).jobs(80).warmup(10))
        .batches(7)
        .seed(17)
        .run()
        .unwrap();
    assert!(report.is_consistent());
    let ss = report.steady_state.expect("open => steady state");
    assert!(
        ss.response.mean >= 40.0,
        "a gang cannot beat its dedicated task time"
    );
    let m = &report.runs[0];
    assert_eq!(m.gang.lockstep_violations, 0);
    assert!(m.gang.gang_starts >= 80, "every job co-allocates");
    // The same stream scheduled independently responds no slower than
    // the barrier-synchronized gang on average.
    let indep = Sim::pool(8)
        .owners(owner(0.10))
        .workload(poisson(0.015, JobShape::new(4, 40.0)).jobs(80).warmup(10))
        .batches(7)
        .seed(17)
        .run()
        .unwrap();
    assert!(report.response.mean >= indep.response.mean);
    // A partial floor composes with the same stream: conservation and
    // the floor invariant hold, and no job can respond faster than its
    // dedicated task time (the shared clock caps the rate at one).
    let partial = Sim::pool(8)
        .owners(owner(0.10))
        .gang(GangPolicy::Partial { min_running: 2 })
        .workload(poisson(0.015, JobShape::new(4, 40.0)).jobs(80).warmup(10))
        .batches(7)
        .seed(17)
        .run()
        .unwrap();
    assert!(partial.is_consistent());
    assert!(partial.runs.iter().all(|m| m.gang.floor_violations == 0));
    let ss = partial.steady_state.expect("open => steady state");
    assert!(ss.response.mean >= 40.0);
    // (No ordering against the other regimes is asserted: a partial
    // gang pools its members' slowdowns into one shared clock, which
    // can beat the independent engine's max-of-task-completions.)
}

#[test]
fn sharded_gang_sweeps_match_serial_bit_for_bit() {
    let build = |shards| {
        Sim::pool(8)
            .owners(owner(0.12))
            .gang(GangPolicy::MigrateAll { overhead: 2.0 })
            .workload(closed(vec![
                JobSpec::at_zero(6, 60.0),
                JobSpec::at_zero(4, 30.0),
            ]))
            .seed(23)
            .replications(5)
            .shards(shards)
            .run()
            .unwrap()
    };
    assert_eq!(build(1), build(4));
}

#[test]
fn sharded_gang_pool_scenario_matches_serial_bit_for_bit() {
    // The scenario lowering composed with shards: until now only
    // ad-hoc gang configs were diff-verified; this pins the
    // `Scenario::GangPool` path itself, under both the default
    // suspend-all policy and a partial floor.
    let ow = owner(0.10);
    for gang in [
        Scenario::GangPool.gang_policy().unwrap(),
        GangPolicy::Partial { min_running: 4 },
        GangPolicy::PartialFrac {
            min_running_frac: 0.5,
        },
    ] {
        let build = |shards| {
            Scenario::GangPool
                .sim(&ow)
                .expect("gang scenario lowers")
                .gang(gang)
                .seed(31)
                .replications(4)
                .shards(shards)
                .run()
                .unwrap()
        };
        let serial = build(1);
        assert_eq!(serial, build(4), "{}", gang.label());
        assert!(serial.is_consistent());
        assert!(serial
            .runs
            .iter()
            .all(|m| m.gang.floor_violations == 0 && m.gang.lockstep_violations == 0));
    }
}

fn gang_policy_from(ix: u8, overhead: f64) -> GangPolicy {
    if ix.is_multiple_of(2) {
        GangPolicy::SuspendAll
    } else {
        GangPolicy::MigrateAll { overhead }
    }
}

fn discipline_from(ix: u8) -> QueueDiscipline {
    if ix == 0 {
        QueueDiscipline::Fcfs
    } else {
        QueueDiscipline::SjfBackfill
    }
}

proptest! {
    // Real simulations: keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The lockstep invariant: across random pools, gang shapes, and
    /// policies, no partial gang is ever observed (all tasks of a job
    /// share one run/suspend state at every event), the accounting
    /// balances, and every unit of demand is eventually goodput.
    #[test]
    fn no_partial_gang_ever_runs(
        w in 2u32..8,
        gang_frac in 1u32..5,
        jobs in 1u64..4,
        demand in 10.0f64..120.0,
        u in 0.02f64..0.25,
        seed in 0u64..5_000,
        policy_ix in 0u8..2,
        overhead in 0.0f64..5.0,
        sjf in 0u8..2,
    ) {
        let jobs = jobs as usize;
        let tasks = (w / gang_frac).max(1);
        let specs: Vec<JobSpec> = (0..jobs)
            .map(|j| JobSpec {
                tasks,
                task_demand: demand,
                arrival: 30.0 * j as f64,
            })
            .collect();
        let mut cfg = SchedConfig::homogeneous(w, &owner(u), specs);
        cfg.gang = gang_policy_from(policy_ix, overhead);
        cfg.discipline = discipline_from(sjf);
        cfg.seed = seed;
        let m = cfg.run().unwrap();
        prop_assert_eq!(m.gang.lockstep_violations, 0, "partial gang observed");
        prop_assert_eq!(m.gang.floor_violations, 0);
        prop_assert_eq!(m.gang.degraded_time, 0.0, "all-or-nothing never degrades");
        prop_assert!(m.is_consistent(), "residual {}", m.accounting_residual());
        prop_assert!(
            (m.goodput - m.total_demand).abs() <= 1e-6 * m.total_demand,
            "goodput {} != demand {}", m.goodput, m.total_demand
        );
        prop_assert_eq!(m.completed_tasks, u64::from(tasks) * jobs as u64);
        prop_assert!(m.gang.coalloc_wait >= 0.0);
        prop_assert!(m.gang.barrier_stall >= 0.0);
        prop_assert!(m.gang.fragmentation >= 0.0);
        // Suspend-all never destroys work.
        if cfg.gang == GangPolicy::SuspendAll {
            prop_assert_eq!(m.wasted, 0.0);
        }
        // Replay determinism.
        prop_assert_eq!(&m, &cfg.run().unwrap());
    }

    /// The acceptance-bar boundary equivalences, across randomized
    /// configurations: `Partial { min_running: k }` (and the
    /// fractional spelling at 1.0) produce reports bit-for-bit
    /// identical to `SuspendAll` on arbitrary gang mixes, and
    /// `Partial { min_running: 1 }` on single-task gangs is the
    /// independent engine. Both go through the shared oracle harness.
    #[test]
    fn partial_boundaries_reproduce_their_oracles(
        w in 2u32..8,
        gang_frac in 1u32..5,
        jobs in 1u64..4,
        demand in 10.0f64..120.0,
        u in 0.02f64..0.25,
        seed in 0u64..5_000,
        sjf in 0u8..2,
        frac_boundary in 0u8..2,
    ) {
        let jobs = jobs as usize;
        let tasks = (w / gang_frac).max(1);
        let specs: Vec<JobSpec> = (0..jobs)
            .map(|j| JobSpec {
                tasks,
                task_demand: demand,
                arrival: 30.0 * j as f64,
            })
            .collect();
        let mut base = SchedConfig::homogeneous(w, &owner(u), specs);
        base.discipline = discipline_from(sjf);
        base.seed = seed;
        // Floor at the full width == suspend-all (the floor clamps per
        // job, so u32::MAX pins every gang to its own width).
        let subject = if frac_boundary == 0 {
            GangPolicy::Partial { min_running: u32::MAX }
        } else {
            GangPolicy::PartialFrac { min_running_frac: 1.0 }
        };
        let m = assert_matches_oracle(
            &base,
            subject,
            |cfg| cfg.gang = GangPolicy::SuspendAll,
            "partial floor at width vs suspend-all",
        );
        prop_assert_eq!(m.gang.floor_violations, 0);
        prop_assert_eq!(m.gang.degraded_time, 0.0);

        // Floor of one on single-task gangs == the independent engine.
        let singles: Vec<JobSpec> = (0..(jobs as u32 * tasks).max(1))
            .map(|j| JobSpec {
                tasks: 1,
                task_demand: demand,
                arrival: 15.0 * f64::from(j),
            })
            .collect();
        let mut single_base = SchedConfig::homogeneous(w, &owner(u), singles);
        single_base.discipline = discipline_from(sjf);
        single_base.seed = seed;
        let m = assert_matches_oracle(
            &single_base,
            GangPolicy::Partial { min_running: 1 },
            independent(EvictionPolicy::SuspendResume),
            "partial floor of one vs independent engine",
        );
        prop_assert_eq!(m.gang.floor_violations, 0);
    }
}
