//! Workspace-level invariants of the gang-scheduling subsystem:
//!
//! 1. **Degenerate equivalence** — with the gang policy off, or with
//!    gangs of one task, the scheduler's output is **bit-for-bit**
//!    identical to the independent-task engine (the PR's acceptance
//!    bar).
//! 2. **Lockstep (no partial gangs)** — at every event, all tasks of a
//!    job share one run/suspend state; the engine re-verifies the
//!    invariant at every gang event and the property tests assert the
//!    violation counter stays zero across random configurations.
//! 3. **Work conservation** — gang runs keep
//!    `delivered == goodput + wasted + checkpoint_overhead` and finish
//!    with `goodput == total demand`, like every other policy.
//! 4. **Composition** — gangs work under open Poisson streams, and
//!    sharded replication sweeps reproduce the serial report exactly.

use nds::core::sim::{closed, poisson, Backend, JobShape, Sim};
use nds::sched::{
    EvictionPolicy, GangPolicy, GangStats, JobSpec, PlacementKind, QueueDiscipline, SchedConfig,
    SchedMetrics,
};
use nds_cluster::owner::OwnerWorkload;
use proptest::prelude::*;

fn owner(u: f64) -> OwnerWorkload {
    OwnerWorkload::continuous_exponential(10.0, u).unwrap()
}

/// Metrics with the gang block zeroed, for comparing gang-of-one runs
/// against the independent engine (everything else must match exactly).
fn strip_gang(m: SchedMetrics) -> SchedMetrics {
    SchedMetrics {
        gang: GangStats::default(),
        ..m
    }
}

#[test]
fn gang_policy_off_is_bit_for_bit_the_independent_engine() {
    // The dedicated acceptance test: the gang-capable engine with the
    // policy off must be indistinguishable from the pre-gang engine —
    // which the degenerate JobRunner equivalence (sched_invariants)
    // pins to the paper's model. Here: a builder run with the knob
    // explicitly off equals one that never mentions gangs, across
    // eviction policies and backends.
    for eviction in [
        EvictionPolicy::SuspendResume,
        EvictionPolicy::Restart,
        EvictionPolicy::Checkpoint {
            interval: 25.0,
            overhead: 1.0,
        },
    ] {
        let build = |with_knob: bool| {
            let mut sim = Sim::pool(6)
                .owners(owner(0.15))
                .eviction(eviction)
                .workload(closed(vec![
                    JobSpec::at_zero(10, 80.0),
                    JobSpec::at_zero(4, 40.0),
                ]))
                .seed(99)
                .replications(2)
                .backend(Backend::Sched);
            if with_knob {
                sim = sim.gang(GangPolicy::Off);
            }
            sim.run().unwrap()
        };
        assert_eq!(build(true), build(false), "{}", eviction.label());
    }
}

#[test]
fn gang_of_one_task_is_bit_for_bit_the_independent_scheduler() {
    // Gangs of one task: co-allocation degenerates to ordinary
    // placement, suspend-all to suspend-resume, and migrate-all to
    // per-task migration — bit-for-bit, for every placement policy and
    // queue discipline.
    let jobs: Vec<JobSpec> = (0..6)
        .map(|j| JobSpec {
            tasks: 1,
            task_demand: 40.0 + 15.0 * f64::from(j),
            arrival: 25.0 * f64::from(j),
        })
        .collect();
    let pairs = [
        (GangPolicy::SuspendAll, EvictionPolicy::SuspendResume),
        (
            GangPolicy::MigrateAll { overhead: 3.0 },
            EvictionPolicy::Migrate { overhead: 3.0 },
        ),
    ];
    for (gang_policy, eviction) in pairs {
        for placement in PlacementKind::ALL {
            for discipline in [QueueDiscipline::Fcfs, QueueDiscipline::SjfBackfill] {
                let mut cfg = SchedConfig::homogeneous(4, &owner(0.20), jobs.clone());
                cfg.placement = placement;
                cfg.discipline = discipline;
                cfg.calibration_horizon = 5_000.0;
                cfg.seed = 71;
                cfg.gang = gang_policy;
                let gang = cfg.run().unwrap();
                let mut indep = cfg.clone();
                indep.gang = GangPolicy::Off;
                indep.eviction = eviction;
                assert_eq!(
                    strip_gang(gang.clone()),
                    indep.run().unwrap(),
                    "{} / {} / {}",
                    gang_policy.label(),
                    placement.name(),
                    discipline.name()
                );
                assert_eq!(gang.gang.barrier_stall, 0.0, "no peers to stall behind");
                assert_eq!(gang.gang.lockstep_violations, 0);
            }
        }
    }
}

#[test]
fn gangs_compose_with_open_poisson_streams() {
    let report = Sim::pool(8)
        .owners(owner(0.10))
        .gang(GangPolicy::SuspendAll)
        .workload(poisson(0.015, JobShape::new(4, 40.0)).jobs(80).warmup(10))
        .batches(7)
        .seed(17)
        .run()
        .unwrap();
    assert!(report.is_consistent());
    let ss = report.steady_state.expect("open => steady state");
    assert!(
        ss.response.mean >= 40.0,
        "a gang cannot beat its dedicated task time"
    );
    let m = &report.runs[0];
    assert_eq!(m.gang.lockstep_violations, 0);
    assert!(m.gang.gang_starts >= 80, "every job co-allocates");
    // The same stream scheduled independently responds no slower than
    // the barrier-synchronized gang on average.
    let indep = Sim::pool(8)
        .owners(owner(0.10))
        .workload(poisson(0.015, JobShape::new(4, 40.0)).jobs(80).warmup(10))
        .batches(7)
        .seed(17)
        .run()
        .unwrap();
    assert!(report.response.mean >= indep.response.mean);
}

#[test]
fn sharded_gang_sweeps_match_serial_bit_for_bit() {
    let build = |shards| {
        Sim::pool(8)
            .owners(owner(0.12))
            .gang(GangPolicy::MigrateAll { overhead: 2.0 })
            .workload(closed(vec![
                JobSpec::at_zero(6, 60.0),
                JobSpec::at_zero(4, 30.0),
            ]))
            .seed(23)
            .replications(5)
            .shards(shards)
            .run()
            .unwrap()
    };
    assert_eq!(build(1), build(4));
}

fn gang_policy_from(ix: u8, overhead: f64) -> GangPolicy {
    if ix.is_multiple_of(2) {
        GangPolicy::SuspendAll
    } else {
        GangPolicy::MigrateAll { overhead }
    }
}

proptest! {
    // Real simulations: keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The lockstep invariant: across random pools, gang shapes, and
    /// policies, no partial gang is ever observed (all tasks of a job
    /// share one run/suspend state at every event), the accounting
    /// balances, and every unit of demand is eventually goodput.
    #[test]
    fn no_partial_gang_ever_runs(
        w in 2u32..8,
        gang_frac in 1u32..5,
        jobs in 1u64..4,
        demand in 10.0f64..120.0,
        u in 0.02f64..0.25,
        seed in 0u64..5_000,
        policy_ix in 0u8..2,
        overhead in 0.0f64..5.0,
        sjf in 0u8..2,
    ) {
        let jobs = jobs as usize;
        let tasks = (w / gang_frac).max(1);
        let specs: Vec<JobSpec> = (0..jobs)
            .map(|j| JobSpec {
                tasks,
                task_demand: demand,
                arrival: 30.0 * j as f64,
            })
            .collect();
        let mut cfg = SchedConfig::homogeneous(w, &owner(u), specs);
        cfg.gang = gang_policy_from(policy_ix, overhead);
        cfg.discipline = if sjf == 0 {
            QueueDiscipline::Fcfs
        } else {
            QueueDiscipline::SjfBackfill
        };
        cfg.seed = seed;
        let m = cfg.run().unwrap();
        prop_assert_eq!(m.gang.lockstep_violations, 0, "partial gang observed");
        prop_assert!(m.is_consistent(), "residual {}", m.accounting_residual());
        prop_assert!(
            (m.goodput - m.total_demand).abs() <= 1e-6 * m.total_demand,
            "goodput {} != demand {}", m.goodput, m.total_demand
        );
        prop_assert_eq!(m.completed_tasks, u64::from(tasks) * jobs as u64);
        prop_assert!(m.gang.coalloc_wait >= 0.0);
        prop_assert!(m.gang.barrier_stall >= 0.0);
        prop_assert!(m.gang.fragmentation >= 0.0);
        // Suspend-all never destroys work.
        if cfg.gang == GangPolicy::SuspendAll {
            prop_assert_eq!(m.wasted, 0.0);
        }
        // Replay determinism.
        prop_assert_eq!(&m, &cfg.run().unwrap());
    }
}
