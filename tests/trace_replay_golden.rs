//! Golden bytes for the trace-replay subsystem: the committed fixture
//! trace (`tests/data/datacenter_small.csv`) and a synthetic datacenter
//! day, each pushed through the **streaming** job feed, must reproduce
//! the recorded `SchedMetrics` **bit-for-bit** (Debug-formatted floats
//! print the shortest round-tripping string, so byte equality is bit
//! equality).
//!
//! This pins three things at once: the CSV parser (the fixture's rows
//! feed the engine verbatim), the synthetic generator's sample path
//! (a pure function of `(seed, replication)`), and the streamed
//! execution path itself.
//!
//! Regenerate (only when *intentionally* changing simulator or
//! generator semantics) with:
//!
//! ```text
//! NDS_REGEN_GOLDEN=1 cargo test -q --test trace_replay_golden
//! ```

use nds::core::sim::{SyntheticTrace, TraceWorkload, Workload};
use nds::sched::{
    EvictionPolicy, GangPolicy, PlacementKind, QueueDiscipline, SchedConfig, SchedMetrics,
};
use nds_cluster::owner::OwnerWorkload;
use std::fmt::Write as _;

const GOLDEN_PATH: &str = "tests/golden/trace_replay.txt";
const FIXTURE_PATH: &str = "tests/data/datacenter_small.csv";
const SEED: u64 = 0x7ACE;

fn config(owners: Vec<OwnerWorkload>) -> SchedConfig {
    SchedConfig {
        owners,
        jobs: Vec::new(),
        placement: PlacementKind::LeastLoaded,
        eviction: EvictionPolicy::SuspendResume,
        gang: GangPolicy::Off,
        failures: None,
        discipline: QueueDiscipline::Fcfs,
        admission_threshold: 1.0,
        estimator_tau: 1_000.0,
        calibration_horizon: 0.0,
        seed: SEED,
        replication: 0,
        max_events: 20_000_000,
    }
}

/// Stream `workload` through the engine and splice the sink-collected
/// records back into the metrics, so the golden pins per-job floats
/// too.
fn stream(workload: &dyn Workload, owners: Vec<OwnerWorkload>, chunk: usize) -> SchedMetrics {
    let mut feed = workload.feed(SEED, 0).expect("workload feeds");
    let mut records = Vec::new();
    let (mut metrics, _events) = config(owners)
        .run_streamed(feed.as_mut(), chunk, &mut |_, record| records.push(record))
        .expect("streamed replay completes");
    assert!(metrics.jobs.is_empty(), "streamed metrics keep jobs empty");
    metrics.jobs = records;
    metrics
}

fn render() -> String {
    let mut out = String::new();

    let fixture = TraceWorkload::from_path(FIXTURE_PATH).expect("committed fixture parses");
    let homogeneous =
        vec![OwnerWorkload::continuous_exponential(10.0, 0.10).expect("valid owner"); 8];
    writeln!(
        out,
        "== fixture_stream\n{:?}",
        stream(&fixture, homogeneous, 16)
    )
    .unwrap();

    let day = SyntheticTrace::datacenter(16, 300);
    let owners = day.owners(SEED, 0).expect("valid owner mix");
    writeln!(out, "== synthetic_day\n{:?}", stream(&day, owners, 64)).unwrap();

    out
}

#[test]
fn streamed_replay_reproduces_golden_bytes() {
    let rendered = render();
    if std::env::var_os("NDS_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all("tests/golden").unwrap();
        std::fs::write(GOLDEN_PATH, &rendered).unwrap();
        eprintln!("regenerated {GOLDEN_PATH}");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file exists (regenerate with NDS_REGEN_GOLDEN=1)");
    for (got, want) in rendered.lines().zip(golden.lines()) {
        assert_eq!(got, want, "streamed replay diverged from the golden");
    }
    assert_eq!(
        rendered.lines().count(),
        golden.lines().count(),
        "scenario list diverged from the golden file"
    );
}

/// The replay is a pure function of its inputs: rendering twice in one
/// process gives the same bytes (fresh feeds, fresh calendars).
#[test]
fn streamed_replay_is_deterministic_across_runs() {
    assert_eq!(render(), render());
}
