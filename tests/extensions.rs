//! Integration tests for the extension systems (the paper's §5 future
//! work), crossing crate boundaries: analytic variance model vs the
//! continuous simulator, SMP workstations, co-scheduled jobs, and
//! synchronized rounds.

use nds::cluster::job::JobRunner;
use nds::cluster::multi::{JobSpec, MultiJobExperiment};
use nds::cluster::owner::OwnerWorkload;
use nds::cluster::smp::SmpWorkstation;
use nds::model::expectation::expected_job_time;
use nds::model::params::OwnerParams;
use nds::model::variance::GeneralOwner;
use nds::pvm::apps::sync_rounds;
use nds::pvm::lan::LanModel;
use nds::pvm::vm::{InterferenceMode, VirtualMachine};
use nds::stats::rng::Xoshiro256StarStar;

#[test]
fn variance_model_tracks_simulated_high_variance_owners() {
    // Analytic general-owner model vs the continuous simulator at
    // matching (O, U, cv2): job-time means within ~10%.
    let t = 400.0;
    let w = 12u32;
    let u = 0.10;
    for cv2 in [1.0, 4.0] {
        let analytic = GeneralOwner::new(OwnerParams::from_utilization(10.0, u).unwrap(), cv2)
            .approx_expected_job_time(t, w);
        let owner = if cv2 == 1.0 {
            OwnerWorkload::continuous_exponential(10.0, u).unwrap()
        } else {
            OwnerWorkload::high_variance(10.0, u, cv2).unwrap()
        };
        let runner = JobRunner::new(321);
        let reps = 150u64;
        let sim: f64 = (0..reps)
            .map(|r| runner.run_continuous_job(&owner, t, w, r).job_time())
            .sum::<f64>()
            / reps as f64;
        let rel = (sim - analytic).abs() / sim;
        assert!(
            rel < 0.10,
            "cv2={cv2}: analytic {analytic:.1} vs simulated {sim:.1} (rel {rel:.3})"
        );
    }
}

#[test]
fn smp_second_cpu_eliminates_single_owner_interference() {
    let owner = OwnerWorkload::continuous_exponential(10.0, 0.25).unwrap();
    let one = SmpWorkstation::new(1, owner.clone());
    let two = SmpWorkstation::new(2, owner);
    let mut rng = Xoshiro256StarStar::new(8);
    let reps = 60;
    let mean = |ws: &SmpWorkstation, rng: &mut Xoshiro256StarStar| -> f64 {
        (0..reps)
            .map(|_| ws.run_task(200.0, rng).execution_time)
            .sum::<f64>()
            / f64::from(reps)
    };
    let m1 = mean(&one, &mut rng);
    let m2 = mean(&two, &mut rng);
    assert!(m1 > 230.0, "single CPU must feel 25% utilization: {m1}");
    assert!(
        (m2 - 200.0).abs() < 2.0,
        "second CPU absorbs the owner: {m2}"
    );
}

#[test]
fn coscheduled_jobs_serialize_per_station() {
    let exp = MultiJobExperiment {
        jobs: vec![
            JobSpec {
                task_demand: 200.0,
                arrival: 0.0,
            },
            JobSpec {
                task_demand: 200.0,
                arrival: 0.0,
            },
            JobSpec {
                task_demand: 200.0,
                arrival: 0.0,
            },
        ],
        workstations: 6,
        owner: OwnerWorkload::continuous_exponential(10.0, 0.05).unwrap(),
        seed: 17,
    };
    let means = exp.mean_response_times(15);
    // k-th job needs ~k task demands (plus interference).
    assert!(means[0] > 200.0 && means[0] < 260.0, "{means:?}");
    assert!(means[1] > 400.0 && means[1] < 520.0, "{means:?}");
    assert!(means[2] > 600.0 && means[2] < 780.0, "{means:?}");
}

#[test]
fn sync_rounds_match_model_per_round() {
    // K rounds of T/K ~ model predicts K * E_j(T/K, W); the measured
    // compute time should track it within ~12% (exponential demands in
    // the simulator vs deterministic in the model).
    let w = 10u32;
    let total = 500.0;
    let k = 10u32;
    let u = 0.10;
    let owner = OwnerWorkload::continuous_exponential(10.0, u).unwrap();
    let reps = 60u64;
    let mut sum = 0.0;
    for rep in 0..reps {
        let mut vm = VirtualMachine::new(
            w as usize,
            InterferenceMode::Continuous(owner.clone()),
            LanModel::instantaneous(),
            31 ^ rep,
        )
        .unwrap();
        sum += sync_rounds::run(&mut vm, total, k, rep)
            .unwrap()
            .compute_time;
    }
    let measured = sum / reps as f64;
    let model_owner = OwnerParams::from_utilization(10.0, u).unwrap();
    let predicted = f64::from(k) * expected_job_time(total / f64::from(k), w, model_owner);
    let rel = (measured - predicted).abs() / predicted;
    assert!(
        rel < 0.12,
        "measured {measured:.1} vs model {predicted:.1} (rel {rel:.3})"
    );
}

#[test]
fn sync_rounds_interference_grows_with_k() {
    let owner = OwnerWorkload::continuous_exponential(10.0, 0.15).unwrap();
    let mut totals = Vec::new();
    for k in [1u32, 8, 32] {
        let mut sum = 0.0;
        for rep in 0..30 {
            let mut vm = VirtualMachine::new(
                8,
                InterferenceMode::Continuous(owner.clone()),
                LanModel::instantaneous(),
                77 ^ u64::from(k) << 16 ^ rep,
            )
            .unwrap();
            sum += sync_rounds::run(&mut vm, 400.0, k, rep)
                .unwrap()
                .compute_time;
        }
        totals.push(sum / 30.0);
    }
    assert!(
        totals[0] < totals[1] && totals[1] < totals[2],
        "interference must grow with round count: {totals:?}"
    );
}
