//! Workspace-level invariants of the unified [`Sim`] builder,
//! extending the `sched_invariants` guarantees to the new API:
//!
//! 1. **Degenerate equivalence** — a `Sim` describing the paper's
//!    configuration (full pool, one task per station, suspend-resume)
//!    reproduces [`JobRunner`] job times **bit-for-bit**, on every
//!    backend the builder can lower to.
//! 2. **Thin lowering** — `Sim::lower` produces exactly the
//!    [`SchedConfig`] a caller would have written by hand, so the
//!    builder adds description, never behaviour.
//! 3. **Work conservation** — reports from every workload shape keep
//!    `delivered == goodput + wasted + checkpoint_overhead`.

use nds::cluster::{ContinuousWorkstation, JobRunner, OwnerWorkload};
use nds::core::sim::{closed, poisson, single_job, Backend, JobShape, Sim};
use nds::sched::{EvictionPolicy, JobSpec, SchedConfig};
use nds::stats::rng::StreamFactory;

fn owner(u: f64) -> OwnerWorkload {
    OwnerWorkload::continuous_exponential(10.0, u).unwrap()
}

#[test]
fn degenerate_sim_reproduces_jobrunner_bit_for_bit() {
    // The paper's configuration expressed through the builder: the
    // scheduler engine, the closed-form fast path, and the automatic
    // lowering must all land on JobRunner's exact job times.
    for (seed, reps) in [(11u64, 4u64), (2024, 2)] {
        let w = 6u32;
        let demand = 250.0;
        let ow = owner(0.10);
        let run = |backend| {
            Sim::pool(w)
                .owners(&ow)
                .workload(single_job(w, demand))
                .eviction(EvictionPolicy::SuspendResume)
                .seed(seed)
                .replications(reps)
                .backend(backend)
                .run()
                .unwrap()
        };
        let engine = run(Backend::Sched);
        let fast = run(Backend::Cluster);
        let auto = run(Backend::Auto);
        let runner = JobRunner::new(seed);
        for rep in 0..reps {
            let baseline = runner.run_continuous_job(&ow, demand, w, rep).job_time();
            let i = rep as usize;
            assert_eq!(
                engine.runs[i].makespan, baseline,
                "seed={seed} rep={rep}: scheduler engine vs JobRunner"
            );
            assert_eq!(
                fast.runs[i].makespan, baseline,
                "seed={seed} rep={rep}: cluster fast path vs JobRunner"
            );
            assert_eq!(
                auto.runs[i].makespan, baseline,
                "seed={seed} rep={rep}: auto backend vs JobRunner"
            );
            assert_eq!(
                engine.runs[i].jobs[0].response_time(),
                baseline,
                "job records carry the same times"
            );
        }
    }
}

#[test]
fn degenerate_sim_matches_per_station_workstation_paths() {
    // Down to the per-station sample paths: the builder's degenerate
    // run is the max over the same ContinuousWorkstation streams the
    // original model consumes.
    let (w, demand, seed, rep) = (5u32, 180.0, 77u64, 3u64);
    let ow = owner(0.12);
    let report = Sim::pool(w)
        .owners(&ow)
        .workload(single_job(w, demand))
        .seed(seed)
        .backend(Backend::Sched)
        .replications(rep + 1)
        .run()
        .unwrap();
    let factory = StreamFactory::new(seed);
    let ws = ContinuousWorkstation::new(ow);
    let per_station_max = (0..w)
        .map(|i| {
            let mut rng = factory.labeled_stream("ws-continuous", u64::from(i) << 32 | rep);
            ws.run_task(demand, &mut rng).execution_time
        })
        .fold(0.0f64, f64::max);
    assert_eq!(report.runs[rep as usize].makespan, per_station_max);
}

#[test]
fn lowering_is_a_thin_shim_over_sched_config() {
    // Sim::lower must produce exactly the config a PR-1 caller would
    // have written by hand — and running both must agree bit-for-bit.
    let ow = owner(0.15);
    let jobs = vec![JobSpec::at_zero(10, 80.0), JobSpec::at_zero(4, 40.0)];
    let sim = Sim::pool(6)
        .owners(&ow)
        .workload(closed(jobs.clone()))
        .eviction(EvictionPolicy::Checkpoint {
            interval: 20.0,
            overhead: 0.5,
        })
        .calibration(5_000.0)
        .seed(99)
        .build()
        .unwrap();
    let lowered = sim.lower(0).unwrap();

    let mut manual = SchedConfig::homogeneous(6, &ow, jobs);
    manual.eviction = EvictionPolicy::Checkpoint {
        interval: 20.0,
        overhead: 0.5,
    };
    manual.calibration_horizon = 5_000.0;
    manual.seed = 99;
    assert_eq!(lowered.run().unwrap(), manual.run().unwrap());

    // And the builder's own run reports the same engine metrics.
    let report = sim.run().unwrap();
    assert_eq!(report.runs[0], manual.run().unwrap());
}

#[test]
fn every_workload_shape_conserves_work() {
    let shapes: Vec<Box<dyn Fn() -> nds::core::sim::SimBuilder>> = vec![
        Box::new(|| {
            Sim::pool(8)
                .owners(owner(0.10))
                .workload(single_job(8, 150.0))
                .backend(Backend::Sched)
        }),
        Box::new(|| {
            Sim::pool(8)
                .owners(owner(0.20))
                .workload(closed(vec![
                    JobSpec::at_zero(12, 90.0),
                    JobSpec {
                        tasks: 6,
                        task_demand: 45.0,
                        arrival: 120.0,
                    },
                ]))
                .eviction(EvictionPolicy::Restart)
        }),
        Box::new(|| {
            Sim::pool(8)
                .owners(owner(0.10))
                .workload(poisson(0.02, JobShape::new(2, 40.0)).jobs(100).warmup(10))
                .eviction(EvictionPolicy::Migrate { overhead: 3.0 })
                .batches(9)
        }),
    ];
    for (i, make) in shapes.iter().enumerate() {
        let report = make().seed(5).run().unwrap();
        assert!(report.is_consistent(), "shape {i} violated conservation");
        for m in &report.runs {
            assert!(
                (m.goodput - m.total_demand).abs() <= 1e-6 * m.total_demand,
                "shape {i}: goodput {} != demand {}",
                m.goodput,
                m.total_demand
            );
        }
    }
}

#[test]
fn steady_state_batches_within_each_replication() {
    // Regression: batch means used to be formed over the concatenation
    // of all replications' responses, so batches straddled replication
    // boundaries. The interval must instead pool per-replication batch
    // means — recomputed here by hand from the engine's own job records.
    let reps = 3usize;
    let batches = 5usize;
    let warmup = 20usize;
    let report = Sim::pool(8)
        .owners(owner(0.10))
        .workload(
            poisson(0.02, JobShape::new(2, 40.0))
                .jobs(120)
                .warmup(warmup),
        )
        .batches(batches)
        .replications(reps as u64)
        .seed(7)
        .run()
        .unwrap();
    let ss = report
        .steady_state
        .expect("open workloads report steady state");
    assert_eq!(
        ss.response.batches,
        reps * batches,
        "each replication contributes its own batches"
    );
    assert_eq!(ss.warmup_dropped, warmup, "warm-up is per replication");
    let mut pooled_means = Vec::new();
    for m in &report.runs {
        let responses: Vec<f64> = m
            .jobs
            .iter()
            .skip(warmup)
            .map(|j| j.completion - j.arrival)
            .collect();
        let batch_size = responses.len() / batches;
        assert_eq!(ss.response.batch_size, batch_size);
        for b in 0..batches {
            let batch = &responses[b * batch_size..(b + 1) * batch_size];
            pooled_means.push(batch.iter().sum::<f64>() / batch_size as f64);
        }
    }
    let expected = pooled_means.iter().sum::<f64>() / pooled_means.len() as f64;
    assert!(
        (ss.response.mean - expected).abs() <= 1e-12 * expected,
        "steady-state mean {} != per-replication pooled mean {}",
        ss.response.mean,
        expected
    );
}

#[test]
fn open_stream_steady_state_is_reproducible_and_sane() {
    let run = || {
        Sim::pool(8)
            .owners(owner(0.10))
            .workload(poisson(0.02, JobShape::new(2, 40.0)).jobs(150).warmup(30))
            .batches(8)
            .seed(42)
            .run()
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed must replay the whole report");
    let ss = a.steady_state.expect("open workloads report steady state");
    assert!(
        ss.response.mean >= 40.0,
        "steady-state response cannot beat the dedicated task demand"
    );
    assert!(ss.response.half_width > 0.0);
    assert!(ss.response.contains(a.response.mean));
    assert_eq!(a.response.jobs, 120, "warm-up jobs excluded");
    // Response times in the report match the engine's own job records
    // after warm-up deletion.
    let recorded: Vec<f64> = a.runs[0]
        .jobs
        .iter()
        .skip(30)
        .map(|j| j.completion - j.arrival)
        .collect();
    let mean = recorded.iter().sum::<f64>() / recorded.len() as f64;
    assert!((mean - a.response.mean).abs() < 1e-9);
}
