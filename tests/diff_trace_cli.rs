//! End-to-end test of `nds diff-trace`: generate real traces through
//! the CLI, then check the differ's three verdicts — identical traces,
//! an injected mid-stream mutation, and usage errors — including the
//! exact phrases scripts are allowed to grep for and the exit-code
//! contract (0 = identical, 1 = divergent, 2 = usage/IO error).

use std::path::{Path, PathBuf};
use std::process::Command;

fn nds() -> Command {
    Command::new(env!("CARGO_BIN_EXE_nds"))
}

/// A scratch dir under the target directory, unique per test, cleaned
/// at the start of each run so reruns start fresh.
fn scratch(test: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_BIN_EXE_nds"))
        .parent()
        .expect("bin dir")
        .join(format!("diff_trace_cli_{test}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Run `nds trace sched` into `out` and return the rep0 JSONL path.
fn generate_trace(out: &Path) -> PathBuf {
    let status = nds()
        .args(["trace", "sched", "--out"])
        .arg(out)
        .status()
        .expect("nds trace runs");
    assert!(status.success(), "nds trace sched failed");
    let path = out.join("rep0.trace.jsonl");
    assert!(path.exists(), "trace output missing at {}", path.display());
    path
}

#[test]
fn identical_traces_report_no_divergence() {
    let dir = scratch("identical");
    let a = generate_trace(&dir.join("a"));
    let b = generate_trace(&dir.join("b"));
    let out = nds()
        .arg("diff-trace")
        .args([&a, &b])
        .output()
        .expect("diff-trace runs");
    assert_eq!(out.status.code(), Some(0), "identical traces must exit 0");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("no divergence"),
        "missing verdict phrase in: {stdout}"
    );
    let lines = std::fs::read_to_string(&a).unwrap().lines().count();
    assert!(
        stdout.contains(&format!("compared {lines} records")),
        "must report the full compared count in: {stdout}"
    );
}

#[test]
fn injected_mutation_is_pinpointed() {
    let dir = scratch("mutation");
    let a = generate_trace(&dir.join("a"));
    // Copy the trace and corrupt one mid-stream record: swap its
    // machine/job payload digits by appending to a field value. The
    // differ must name the exact line and the last agreeing sim-time.
    let body = std::fs::read_to_string(&a).unwrap();
    let lines: Vec<&str> = body.lines().collect();
    assert!(lines.len() > 20, "trace too short to mutate mid-stream");
    let target = lines.len() / 2;
    let mutated: String = lines
        .iter()
        .enumerate()
        .map(|(i, l)| {
            if i == target {
                l.replace('}', ",\"injected\":1}")
            } else {
                (*l).to_string()
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
        + "\n";
    let b = dir.join("mutated.trace.jsonl");
    std::fs::write(&b, &mutated).unwrap();

    let out = nds()
        .arg("diff-trace")
        .args([&a, &b])
        .args(["--context", "2"])
        .output()
        .expect("diff-trace runs");
    assert_eq!(out.status.code(), Some(1), "divergent traces must exit 1");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains(&format!("first divergent record at line {}", target + 1)),
        "must name line {} in: {stdout}",
        target + 1
    );
    assert!(
        stdout.contains("last agreeing sim-time"),
        "must report the last agreed timestamp in: {stdout}"
    );
    assert!(
        stdout.contains("\"injected\":1"),
        "must print the mutated record in: {stdout}"
    );
    assert!(
        stdout.contains("agreed context"),
        "must print the agreed context window in: {stdout}"
    );
}

#[test]
fn truncated_trace_diverges_at_end_of_stream() {
    let dir = scratch("truncated");
    let a = generate_trace(&dir.join("a"));
    let body = std::fs::read_to_string(&a).unwrap();
    let keep = body.lines().count() - 3;
    let truncated: String = body.lines().take(keep).collect::<Vec<_>>().join("\n") + "\n";
    let b = dir.join("truncated.trace.jsonl");
    std::fs::write(&b, &truncated).unwrap();
    let out = nds()
        .arg("diff-trace")
        .args([&a, &b])
        .output()
        .expect("diff-trace runs");
    assert_eq!(out.status.code(), Some(1), "a truncated trace diverges");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("<end of trace>"),
        "the shorter side must be shown as ended in: {stdout}"
    );
}

#[test]
fn usage_errors_exit_two() {
    let dir = scratch("usage");
    let a = generate_trace(&dir.join("a"));
    // Missing file → exit 2.
    let out = nds()
        .arg("diff-trace")
        .arg(&a)
        .arg(dir.join("does_not_exist.jsonl"))
        .output()
        .expect("diff-trace runs");
    assert_eq!(out.status.code(), Some(2), "missing input must exit 2");
    // Unknown flag → exit 2.
    let out = nds()
        .arg("diff-trace")
        .args([&a, &a])
        .arg("--bogus")
        .output()
        .expect("diff-trace runs");
    assert_eq!(out.status.code(), Some(2), "unknown flag must exit 2");
    // Wrong arity → exit 2.
    let out = nds().arg("diff-trace").arg(&a).output().expect("runs");
    assert_eq!(out.status.code(), Some(2), "one path must exit 2");
}
