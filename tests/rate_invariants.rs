//! Rate-awareness invariants of the job-level engine.
//!
//! [`GangPolicy::Partial`] broke the engine's founding assumption that
//! a running task always progresses at rate one: a degraded gang with
//! `r` of `k` members running advances each task at rate `r / k`. That
//! makes work accounting an integral, and integrals can drift — so
//! this suite pins the conservation laws the rate-aware engine must
//! obey:
//!
//! 1. **Conservation** — for every run, the effective-parallelism
//!    integral `∫ rate·dt` over work segments equals the demand served
//!    (`total_demand`) at completion, within `1e-9` relative.
//! 2. **Rate bounds** — effective parallelism never exceeds a gang's
//!    width and never drops below its `min_running` floor while
//!    running: the engine re-checks at every gang event and its
//!    violation counter must read zero everywhere.
//! 3. **Degraded-mode consistency** — all-or-nothing policies never
//!    report degraded time; partial floors below the width do, exactly
//!    when owners interfere; and suspend-in-place loses no work under
//!    any floor.
//! 4. **SJF stability** — the rate-aware backfill key (outstanding
//!    *work*, not wall time) is compared with a total order: equal-key
//!    jobs dispatch in strict arrival order at the engine level.

use nds::sched::{
    EvictionPolicy, FailureModel, GangPolicy, JobSpec, QueueDiscipline, SchedConfig, SchedMetrics,
};
use nds_cluster::owner::OwnerWorkload;
use proptest::prelude::*;

fn owner(u: f64) -> OwnerWorkload {
    OwnerWorkload::continuous_exponential(10.0, u).unwrap()
}

/// The conservation law: the work integral equals the served demand to
/// 1e-9 relative, and the in-engine rate-bound counters read zero.
fn assert_conserves(m: &SchedMetrics, label: &str) {
    assert!(
        (m.gang.parallelism_integral - m.total_demand).abs() <= 1e-9 * m.total_demand,
        "{label}: ∫rate·dt = {} vs demand {}",
        m.gang.parallelism_integral,
        m.total_demand
    );
    assert_eq!(m.gang.floor_violations, 0, "{label}");
    assert_eq!(m.gang.lockstep_violations, 0, "{label}");
    assert!(
        m.is_consistent(),
        "{label}: residual {}",
        m.accounting_residual()
    );
    assert!(
        (m.goodput - m.total_demand).abs() <= 1e-6 * m.total_demand,
        "{label}: goodput {} != demand {}",
        m.goodput,
        m.total_demand
    );
}

fn gang_mix() -> Vec<JobSpec> {
    vec![
        JobSpec::at_zero(4, 60.0),
        JobSpec {
            tasks: 6,
            task_demand: 40.0,
            arrival: 30.0,
        },
        JobSpec {
            tasks: 2,
            task_demand: 80.0,
            arrival: 60.0,
        },
    ]
}

#[test]
fn work_integral_matches_demand_across_the_policy_spectrum() {
    for gang in [
        GangPolicy::SuspendAll,
        GangPolicy::MigrateAll { overhead: 2.0 },
        GangPolicy::Partial { min_running: 1 },
        GangPolicy::Partial { min_running: 2 },
        GangPolicy::Partial { min_running: 4 },
        GangPolicy::PartialFrac {
            min_running_frac: 0.5,
        },
    ] {
        let mut cfg = SchedConfig::homogeneous(8, &owner(0.15), gang_mix());
        cfg.gang = gang;
        cfg.seed = 424;
        let m = cfg.run().unwrap();
        assert_conserves(&m, &gang.label());
        if !gang.is_partial() {
            assert_eq!(m.gang.degraded_time, 0.0, "{}", gang.label());
        }
    }
}

#[test]
fn degraded_time_appears_exactly_when_owners_break_full_width() {
    // Low floor + interfering owners: the gangs must spend wall-clock
    // time below full width, and that time is bounded by the makespan
    // times the number of gangs that can be degraded at once.
    let mut cfg = SchedConfig::homogeneous(8, &owner(0.20), gang_mix());
    cfg.gang = GangPolicy::Partial { min_running: 1 };
    cfg.seed = 9;
    let m = cfg.run().unwrap();
    assert_conserves(&m, "partial(1) under 20% owners");
    assert!(m.gang.degraded_time > 0.0, "owners must degrade some gang");
    assert!(
        m.gang.degraded_time <= m.makespan * m.jobs.len() as f64 + 1e-9,
        "degraded time is a per-gang wall-clock integral"
    );
    assert_eq!(m.wasted, 0.0, "partial suspends in place, losing nothing");
    // On a quiet pool the contended mix STILL degrades — partial
    // admission starts the 6-wide gang on the 4 machines the first
    // gang left free — but a single fully-fitting job never does,
    // and both keep the integral exact.
    let mut quiet = cfg.clone();
    quiet.owners = vec![owner(1e-9); 8];
    let q = quiet.run().unwrap();
    assert_conserves(&q, "partial(1) quiet pool, contended mix");
    assert!(
        q.gang.degraded_time > 0.0,
        "partial admission runs the second gang under-placed"
    );
    let mut fitting = quiet.clone();
    fitting.jobs = vec![JobSpec::at_zero(8, 60.0)];
    let f = fitting.run().unwrap();
    assert_conserves(&f, "partial(1) quiet pool, fitting job");
    assert_eq!(f.gang.degraded_time, 0.0);
    assert_eq!(f.gang.gang_suspensions, 0);
}

#[test]
fn effective_parallelism_is_bounded_by_running_width() {
    // The parallelism integral normalized by wall-clock time can never
    // exceed the pool (nor the sum of gang widths); the instantaneous
    // bounds (floor <= r <= width while running) are re-verified by
    // the engine at every event and surfaced via floor_violations,
    // which assert_conserves pins to zero.
    let mut cfg = SchedConfig::homogeneous(6, &owner(0.15), gang_mix());
    cfg.gang = GangPolicy::Partial { min_running: 2 };
    cfg.seed = 77;
    let m = cfg.run().unwrap();
    assert_conserves(&m, "partial(2) bounds");
    assert!(
        m.gang.parallelism_integral <= 6.0 * m.makespan + 1e-9,
        "mean effective parallelism cannot exceed the pool"
    );
    assert!(m.gang.degraded_time <= m.makespan * 3.0 + 1e-9);
}

#[test]
fn under_placed_gang_conserves_at_fractional_rate() {
    // A 6-wide gang on a 4-machine pool can never be whole: it runs
    // its entire life degraded at rate <= 4/6, yet the work integral
    // still lands on the demand exactly.
    let mut cfg = SchedConfig::homogeneous(4, &owner(0.05), vec![JobSpec::at_zero(6, 30.0)]);
    cfg.gang = GangPolicy::Partial { min_running: 2 };
    cfg.seed = 5;
    let m = cfg.run().unwrap();
    assert_conserves(&m, "under-placed 6-on-4 gang");
    assert!(m.gang.degraded_time > 0.0);
    assert!(
        m.makespan >= 6.0 * 30.0 / 4.0 - 1e-9,
        "the rate cap k_pool/width lower-bounds the makespan"
    );
}

#[test]
fn crashes_conserve_work_across_eviction_policies() {
    // Machine crashes destroy progress, repeat work, and take machines
    // out of the pool — yet every unit of delivered CPU must still be
    // classified exactly once: delivered == goodput + wasted +
    // checkpoint_overhead to 1e-9 relative, with the crash-attributed
    // share a sub-account of wasted.
    let jobs = vec![JobSpec::at_zero(6, 80.0), JobSpec::at_zero(6, 80.0)];
    for eviction in [
        EvictionPolicy::SuspendResume,
        EvictionPolicy::Restart,
        EvictionPolicy::Checkpoint {
            interval: 20.0,
            overhead: 1.0,
        },
        EvictionPolicy::Adaptive {
            threshold: 40.0,
            interval: 20.0,
            overhead: 1.0,
        },
    ] {
        let mut cfg = SchedConfig::homogeneous(6, &owner(0.12), jobs.clone());
        cfg.eviction = eviction;
        cfg.failures = Some(FailureModel::exponential(80.0, 10.0).unwrap());
        cfg.seed = 0xFA17;
        let m = cfg.run().unwrap();
        let label = eviction.label();
        assert!(m.crashes > 0, "{label}: mtbf 80 on 6 machines must crash");
        assert!(
            m.accounting_residual().abs() <= 1e-9 * m.delivered,
            "{label}: residual {} on delivered {}",
            m.accounting_residual(),
            m.delivered
        );
        assert!(
            m.crash_lost <= m.wasted + 1e-9,
            "{label}: crash losses are a share of wasted ({} vs {})",
            m.crash_lost,
            m.wasted
        );
        assert!(m.downtime > 0.0, "{label}: crashes must accrue downtime");
        assert!(
            m.downtime <= 6.0 * m.makespan + 1e-9,
            "{label}: downtime is a machine-time integral over the pool"
        );
        assert_eq!(
            m.crashes_by_machine.iter().sum::<u64>(),
            m.crashes,
            "{label}"
        );
        assert_eq!(&m, &cfg.run().unwrap(), "{label}: crash runs must replay");
    }
}

#[test]
fn gang_runs_conserve_the_work_integral_under_crashes() {
    // A gang member's crash routes through the gang reclaim path — the
    // gang freezes (or migrates) instead of losing progress — so the
    // rate-aware conservation law survives fault injection untouched.
    for gang in [
        GangPolicy::SuspendAll,
        GangPolicy::Partial { min_running: 1 },
        GangPolicy::Partial { min_running: 2 },
    ] {
        let mut cfg = SchedConfig::homogeneous(8, &owner(0.10), gang_mix());
        cfg.gang = gang;
        cfg.failures = Some(FailureModel::exponential(100.0, 12.0).unwrap());
        cfg.seed = 0xFA17;
        let m = cfg.run().unwrap();
        let label = format!("{} under crashes", gang.label());
        assert!(m.crashes > 0, "{label}: pool must crash");
        assert_conserves(&m, &label);
        assert_eq!(
            m.crash_lost, 0.0,
            "{label}: gangs freeze at barriers, crashes destroy nothing"
        );
        assert!(m.downtime > 0.0, "{label}");
    }
}

#[test]
fn sjf_backfill_dispatches_equal_keys_in_arrival_order() {
    // Engine-level regression for the total_cmp fix: four identical
    // jobs (equal outstanding-work keys, NaN-free) under SJF backfill
    // on a serializing one-machine pool must complete in submission
    // order — stable FCFS tie-breaking, task queue and gang queue
    // alike.
    let jobs: Vec<JobSpec> = (0..4)
        .map(|j| JobSpec {
            tasks: 1,
            task_demand: 25.0,
            arrival: 0.5 * f64::from(j),
        })
        .collect();
    for gang in [GangPolicy::Off, GangPolicy::Partial { min_running: 1 }] {
        let mut cfg = SchedConfig::homogeneous(1, &owner(0.02), jobs.clone());
        cfg.discipline = QueueDiscipline::SjfBackfill;
        cfg.gang = gang;
        cfg.seed = 3;
        let m = cfg.run().unwrap();
        for pair in m.jobs.windows(2) {
            assert!(
                pair[0].completion < pair[1].completion,
                "{}: equal-key jobs must finish FCFS: {:?}",
                gang.label(),
                m.jobs
            );
        }
    }
}

proptest! {
    // Real simulations: keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Conservation under randomized partial configurations: random
    /// pools, gang widths (including wider-than-pool), floors, owner
    /// intensities, and disciplines all keep `∫ rate·dt == demand` to
    /// 1e-9, never observe a floor violation, and replay
    /// deterministically.
    #[test]
    fn random_partial_configs_conserve_work(
        w in 2u32..8,
        width in 1u32..10,
        floor in 1u32..10,
        jobs in 1u64..4,
        demand in 10.0f64..120.0,
        u in 0.02f64..0.25,
        seed in 0u64..5_000,
        sjf in 0u8..2,
        frac_mode in 0u8..2,
    ) {
        let jobs = jobs as usize;
        let specs: Vec<JobSpec> = (0..jobs)
            .map(|j| JobSpec {
                tasks: width,
                task_demand: demand,
                arrival: 30.0 * j as f64,
            })
            .collect();
        let mut cfg = SchedConfig::homogeneous(w, &owner(u), specs);
        // Keep the resolved floor within the pool so the config
        // validates; the per-job clamp handles floor > width.
        cfg.gang = if frac_mode == 0 {
            GangPolicy::Partial { min_running: floor.min(width).min(w) }
        } else {
            GangPolicy::PartialFrac {
                min_running_frac: (f64::from(floor.min(width).min(w)) / f64::from(width.max(1)))
                    .clamp(0.05, 1.0),
            }
        };
        if cfg.gang.floor_for(width) as usize > w as usize {
            // ceil(frac * width) can still overshoot a small pool;
            // shrink to the vacuous floor in that case.
            cfg.gang = GangPolicy::Partial { min_running: 1 };
        }
        cfg.discipline = if sjf == 0 {
            QueueDiscipline::Fcfs
        } else {
            QueueDiscipline::SjfBackfill
        };
        cfg.seed = seed;
        let m = cfg.run().unwrap();
        prop_assert!(
            (m.gang.parallelism_integral - m.total_demand).abs() <= 1e-9 * m.total_demand,
            "∫rate·dt = {} vs demand {}", m.gang.parallelism_integral, m.total_demand
        );
        prop_assert_eq!(m.gang.floor_violations, 0);
        prop_assert_eq!(m.gang.lockstep_violations, 0);
        prop_assert_eq!(m.wasted, 0.0, "partial floors suspend in place");
        prop_assert!(m.is_consistent(), "residual {}", m.accounting_residual());
        prop_assert_eq!(m.completed_tasks, u64::from(width) * jobs as u64);
        prop_assert!(m.gang.degraded_time >= 0.0);
        prop_assert!(
            m.gang.parallelism_integral <= f64::from(w) * m.makespan + 1e-9,
            "effective parallelism cannot exceed the pool"
        );
        // Replay determinism survives the rate-aware refactor.
        prop_assert_eq!(&m, &cfg.run().unwrap());
    }
}
