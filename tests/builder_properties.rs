//! Property-based tests of the [`Sim`] builder's validation: invalid
//! arrival rates, degenerate pools, and bad policy parameters must
//! surface as **typed errors** — never panics — and every valid
//! combination must build and run.

use nds::cluster::OwnerWorkload;
use nds::core::sim::{closed, poisson, single_job, JobShape, Sim, SimError, Workload};
use nds::sched::{EvictionPolicy, JobSpec, PlacementKind, QueueDiscipline};
use proptest::prelude::*;

fn owner(u: f64) -> OwnerWorkload {
    OwnerWorkload::continuous_exponential(10.0, u).unwrap()
}

/// Map a generated index onto a (possibly invalid) eviction policy.
fn eviction_from(kind: u8, a: f64, b: f64) -> EvictionPolicy {
    match kind % 4 {
        0 => EvictionPolicy::Restart,
        1 => EvictionPolicy::SuspendResume,
        2 => EvictionPolicy::Migrate { overhead: a },
        _ => EvictionPolicy::Checkpoint {
            interval: a,
            overhead: b,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn negative_or_zero_rates_are_typed_errors(rate in -1_000.0f64..0.0, tasks in 1u32..16, demand in 1.0f64..500.0) {
        let workload = poisson(rate, JobShape::new(tasks, demand));
        prop_assert!(matches!(
            workload.validate(),
            Err(SimError::InvalidWorkload { field: "rate", .. })
        ));
        let err = Sim::pool(4)
            .owners(owner(0.1))
            .workload(poisson(rate, JobShape::new(tasks, demand)))
            .run()
            .unwrap_err();
        prop_assert!(matches!(err, SimError::InvalidWorkload { .. }));
    }

    #[test]
    fn zero_station_pools_are_typed_errors(tasks in 1u32..32, demand in 1.0f64..500.0, u in 0.01f64..0.5) {
        let err = Sim::pool(0)
            .owners(owner(u))
            .workload(single_job(tasks, demand))
            .build()
            .unwrap_err();
        prop_assert!(matches!(
            err,
            SimError::InvalidPool { field: "workstations", .. }
        ));
    }

    #[test]
    fn bad_checkpoint_and_migrate_parameters_are_typed_errors(interval in -100.0f64..0.0, overhead in -100.0f64..0.0) {
        let build = |eviction| {
            Sim::pool(4)
                .owners(owner(0.1))
                .workload(single_job(4, 50.0))
                .eviction(eviction)
                .build()
        };
        let err = build(EvictionPolicy::Checkpoint { interval, overhead: 1.0 }).unwrap_err();
        prop_assert!(matches!(err, SimError::InvalidPolicy { .. }));
        let err = build(EvictionPolicy::Migrate { overhead }).unwrap_err();
        prop_assert!(matches!(err, SimError::InvalidPolicy { .. }));
    }

    #[test]
    fn bad_pool_knobs_are_typed_errors(threshold in -10.0f64..0.0, tau in -50.0f64..0.0) {
        let base = || Sim::pool(4).owners(owner(0.1)).workload(single_job(4, 50.0));
        prop_assert!(matches!(
            base().admission_threshold(threshold).build().unwrap_err(),
            SimError::InvalidPool { field: "admission_threshold", .. }
        ));
        prop_assert!(matches!(
            base().estimator_tau(tau).build().unwrap_err(),
            SimError::InvalidPool { field: "estimator_tau", .. }
        ));
    }

    #[test]
    fn warmup_swallowing_the_window_is_a_typed_error(jobs in 1u64..50, extra in 0u64..10) {
        let jobs = jobs as usize;
        let err = Sim::pool(4)
            .owners(owner(0.1))
            .workload(
                poisson(0.05, JobShape::new(2, 20.0))
                    .jobs(jobs)
                    .warmup(jobs + extra as usize),
            )
            .run()
            .unwrap_err();
        prop_assert!(matches!(
            err,
            SimError::InvalidWorkload { field: "warmup", .. }
        ));
    }

    #[test]
    fn owner_count_mismatch_is_a_typed_error(w in 2u32..12, delta in 1u32..4) {
        let owners = vec![owner(0.1); (w - delta.min(w - 1)) as usize];
        let err = Sim::pool(w)
            .owners(owners)
            .workload(single_job(w, 50.0))
            .build()
            .unwrap_err();
        prop_assert!(matches!(err, SimError::InvalidPool { field: "owners", .. }));
    }
}

proptest! {
    // Runs real (small) simulations, so fewer cases.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_valid_policy_combination_builds_and_runs(
        placement_ix in 0u8..3,
        eviction_ix in 0u8..4,
        sjf in 0u8..2,
        w in 1u32..8,
        tasks in 1u32..12,
        demand in 5.0f64..80.0,
        u in 0.01f64..0.25,
    ) {
        let placement = PlacementKind::ALL[placement_ix as usize];
        let eviction = eviction_from(eviction_ix, 15.0, 0.5);
        let discipline = if sjf == 0 {
            QueueDiscipline::Fcfs
        } else {
            QueueDiscipline::SjfBackfill
        };
        let report = Sim::pool(w)
            .owners(owner(u))
            .placement(placement)
            .eviction(eviction)
            .discipline(discipline)
            .workload(closed(vec![
                JobSpec::at_zero(tasks, demand),
                JobSpec { tasks: 2, task_demand: demand / 2.0, arrival: demand },
            ]))
            .seed(7)
            .run();
        let report = match report {
            Ok(r) => r,
            Err(e) => return Err(TestCaseError::fail(format!(
                "valid combination rejected: {placement:?}/{eviction:?}: {e}"
            ))),
        };
        prop_assert!(report.is_consistent());
        prop_assert_eq!(
            report.runs[0].completed_tasks,
            u64::from(tasks) + 2
        );
    }
}

#[test]
fn non_finite_rates_are_typed_errors_not_panics() {
    for rate in [0.0, -0.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let err = Sim::pool(4)
            .owners(owner(0.1))
            .workload(poisson(rate, JobShape::new(4, 50.0)))
            .run()
            .unwrap_err();
        assert!(
            matches!(err, SimError::InvalidWorkload { field: "rate", .. }),
            "rate {rate}: got {err}"
        );
    }
}

#[test]
fn non_finite_policy_parameters_are_typed_errors() {
    for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        for eviction in [
            EvictionPolicy::Migrate { overhead: v },
            EvictionPolicy::Checkpoint {
                interval: v,
                overhead: 1.0,
            },
            EvictionPolicy::Checkpoint {
                interval: 10.0,
                overhead: v,
            },
        ] {
            let err = Sim::pool(4)
                .owners(owner(0.1))
                .workload(single_job(4, 50.0))
                .eviction(eviction)
                .build()
                .unwrap_err();
            assert!(
                matches!(err, SimError::InvalidPolicy { .. }),
                "{eviction:?}: got {err}"
            );
        }
    }
}
