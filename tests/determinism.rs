//! Two-run identity regression for the ordered-container migration.
//!
//! PR 7 converted the sim-visible `HashMap`/`HashSet` state in the PVM
//! layer (`task_host`, `mailboxes`, daemon task tables), the SMP
//! workstation (`req_owner`), and the closure engine (`alive` /
//! `cancelled`) to `BTreeMap`/`BTreeSet`, and moved every float
//! comparison on the event path to `total_cmp`. These tests pin the
//! guarantee that migration was made for: running the same configured
//! experiment twice produces *identical* results, down to the last bit
//! of every observable field. PR 10 extends the same guarantee to
//! failure injection: crash/repair processes replay bit-for-bit and
//! survive replication sharding.

use nds::cluster::owner::OwnerWorkload;
use nds::cluster::smp::SmpWorkstation;
use nds::core::sim::{closed, Backend, Sim, SimBuilder};
use nds::des::{Engine, SimTime};
use nds::pvm::lan::LanModel;
use nds::pvm::message::{Message, MessageBuffer};
use nds::pvm::vm::{InterferenceMode, VirtualMachine};
use nds::sched::{EvictionPolicy, FailureModel, JobSpec};
use std::cell::RefCell;
use std::rc::Rc;

/// One scatter/compute/gather experiment over the PVM layer, returning
/// a full transcript of everything observable: delivery times, receive
/// times, unpacked payloads, task outcomes, mailbox depths.
fn pvm_transcript(seed: u64) -> Vec<(String, f64)> {
    let owner = OwnerWorkload::continuous_exponential(10.0, 0.15).expect("valid owner");
    let mut vm = VirtualMachine::new(
        4,
        InterferenceMode::Continuous(owner),
        LanModel::new(0.5, 1_000.0),
        seed,
    )
    .expect("valid VM");
    let mut log = Vec::new();

    // Master on host 0, workers round-robin on all hosts.
    let master = vm.spawn(0).expect("spawn master");
    let workers = vm.spawn_round_robin(8).expect("spawn workers");

    // Scatter: one work item per worker.
    let mut clock = 0.0;
    for (i, &w) in workers.iter().enumerate() {
        let mut body = MessageBuffer::new();
        body.pack_f64(50.0 + 10.0 * i as f64).pack_u64(i as u64);
        let delivery = vm
            .send(
                Message {
                    src: master,
                    dst: w,
                    tag: 1,
                    body,
                },
                clock,
            )
            .expect("scatter send");
        log.push((format!("scatter[{i}].delivery"), delivery));
        clock += 0.1;
    }

    // Each worker receives, computes under interference, replies.
    for (i, &w) in workers.iter().enumerate() {
        let (at, mut msg) = vm.recv(w, Some(1), 0.0).expect("worker recv");
        let demand = msg.body.unpack_f64().expect("demand");
        let idx = msg.body.unpack_u64().expect("index");
        log.push((format!("worker[{i}].recv_at"), at));
        log.push((format!("worker[{i}].idx"), idx as f64));
        let out = vm.compute(w, demand, at, 3).expect("compute");
        log.push((format!("worker[{i}].exec"), out.execution_time));
        log.push((format!("worker[{i}].susp"), out.suspended_time));
        log.push((format!("worker[{i}].intr"), out.interruptions as f64));
        let mut body = MessageBuffer::new();
        body.pack_f64(out.execution_time);
        let delivery = vm
            .send(
                Message {
                    src: w,
                    dst: master,
                    tag: 2,
                    body,
                },
                at + out.execution_time,
            )
            .expect("gather send");
        log.push((format!("gather[{i}].delivery"), delivery));
    }

    // Gather: master drains its mailbox in delivery order.
    log.push(("master.pending".into(), vm.pending_messages(master) as f64));
    for i in 0..workers.len() {
        let (at, mut msg) = vm.recv(master, Some(2), 0.0).expect("master recv");
        log.push((format!("gather[{i}].recv_at"), at));
        log.push((
            format!("gather[{i}].exec"),
            msg.body.unpack_f64().expect("exec time"),
        ));
    }
    for &w in &workers {
        vm.exit(w).expect("worker exit");
    }
    vm.exit(master).expect("master exit");
    log
}

#[test]
fn pvm_two_runs_identical() {
    let a = pvm_transcript(0xD15C);
    let b = pvm_transcript(0xD15C);
    assert_eq!(a, b, "same seed must replay bit-for-bit");
    let c = pvm_transcript(0xD15C + 1);
    assert_ne!(a, c, "a different seed must change the sample path");
}

/// The SMP facility tracks live owner requests in a `req_owner` map;
/// multiple owner streams on fewer CPUs exercise its insert/remove
/// churn and the engine's cancel path (`alive`/`cancelled` sets).
#[test]
fn smp_multi_owner_two_runs_identical() {
    let owners: Vec<OwnerWorkload> = (1..=5)
        .map(|i| {
            OwnerWorkload::continuous_exponential(8.0 + i as f64, 0.05 * i as f64)
                .expect("valid owner")
        })
        .collect();
    let ws = SmpWorkstation::with_owners(2, owners);
    let run = |seed: u64| {
        let mut rng = nds::stats::rng::Xoshiro256StarStar::new(seed);
        (0..10)
            .map(|_| ws.run_task(120.0, &mut rng))
            .collect::<Vec<_>>()
    };
    let a = run(11);
    let b = run(11);
    assert_eq!(a, b, "same seed must replay bit-for-bit");
    assert!(a.iter().any(|o| o.interruptions > 0), "runs must contend");
}

/// A failure-armed pool simulation, parameterized only by shard count.
/// Crash/repair processes draw from their own labeled RNG streams, so
/// determinism here pins both the failure sample paths and their
/// interleaving with owner reclaims and job events.
fn faulty_sim(shards: usize) -> SimBuilder {
    let owner = OwnerWorkload::continuous_exponential(10.0, 0.12).expect("valid owner");
    Sim::pool(6)
        .owners(&owner)
        .eviction(EvictionPolicy::Adaptive {
            threshold: 40.0,
            interval: 25.0,
            overhead: 1.0,
        })
        .failures(FailureModel::exponential(90.0, 12.0).expect("valid lifetimes"))
        .workload(closed(JobSpec::stream(3, 6, 100.0, 40.0)))
        .backend(Backend::Sched)
        .seed(0xFA11)
        .replications(4)
        .shards(shards)
}

/// Failure injection must not cost replay identity: two runs of the
/// same failure-armed configuration agree on the full `Report` — every
/// crash count, downtime integral, and per-machine tally bit-for-bit —
/// and sharding the replications changes nothing.
#[test]
fn failure_runs_two_runs_identical() {
    let a = faulty_sim(1).run().expect("faulty run completes");
    let b = faulty_sim(1).run().expect("faulty run completes");
    assert_eq!(a, b, "same seed must replay bit-for-bit under failures");
    assert!(
        a.runs.iter().all(|m| m.crashes > 0),
        "every replication must actually crash: {:?}",
        a.runs.iter().map(|m| m.crashes).collect::<Vec<_>>()
    );
    assert!(a.runs.iter().all(|m| m.downtime > 0.0));
    let sharded = faulty_sim(4).run().expect("sharded faulty run completes");
    assert_eq!(a, sharded, "shards(4) must equal shards(1) under failures");
    let c = faulty_sim(1)
        .seed(0xFA12)
        .run()
        .expect("reseeded run completes");
    assert_ne!(a, c, "a different seed must change the sample path");
}

/// Heavy schedule/cancel churn through the closure engine: the lazy
/// cancellation bookkeeping must not affect replay identity.
#[test]
fn engine_cancellation_churn_identical() {
    let run = || {
        let fired: Rc<RefCell<Vec<(f64, u64)>>> = Rc::new(RefCell::new(Vec::new()));
        let mut e = Engine::new();
        let mut ids = Vec::new();
        for i in 0..200u64 {
            let f = fired.clone();
            let t = SimTime::new(((i * 7919) % 101) as f64);
            ids.push(
                e.schedule(t, move |eng| {
                    f.borrow_mut().push((eng.now().as_f64(), i));
                })
                .expect("schedule"),
            );
        }
        // Cancel every third event, including some already-cancelled.
        for (i, &id) in ids.iter().enumerate() {
            if i % 3 == 0 {
                assert!(e.cancel(id));
                assert!(!e.cancel(id));
            }
        }
        e.run_to_quiescence(None);
        let log = fired.borrow().clone();
        log
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
    assert_eq!(a.len(), 200 - 67, "exactly the cancelled events skipped");
}
