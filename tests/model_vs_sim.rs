//! V1 integration: the discrete-time simulator agrees with the
//! analysis (the paper's §2.2 validation), and the continuous-time
//! simulator agrees with its own closed-form anchor.

use nds::cluster::continuous::ContinuousWorkstation;
use nds::cluster::discrete::DiscreteTaskSim;
use nds::cluster::experiment::JobTimeExperiment;
use nds::cluster::owner::OwnerWorkload;
use nds::core::comparison::ValidationSuite;
use nds::model::expectation::{expected_job_time_int, expected_task_time};
use nds::model::params::OwnerParams;
use nds::stats::rng::Xoshiro256StarStar;
use nds::stats::summary::RunningStats;

#[test]
fn discrete_sim_matches_analysis_across_fig1_points() {
    let suite = ValidationSuite::quick(20_240_601);
    // Sample Figure 1's parameter plane: the corners and the middle.
    for (w, u) in [(1u32, 0.01), (10, 0.10), (50, 0.05), (100, 0.20)] {
        let row = suite.validate_point(1000.0, w, u).expect("valid point");
        assert!(
            row.outcome.relative_error < 0.02,
            "W={w} U={u}: analytic {} vs simulated {} (rel {})",
            row.analytic,
            row.outcome.report.mean,
            row.outcome.relative_error
        );
    }
}

#[test]
fn paper_batch_means_procedure_reaches_paper_precision() {
    // One full-paper-configuration point (20 x 1000 samples): the CI
    // half-width must satisfy the paper's "1 percent or less" claim and
    // cover the analysis.
    let owner = OwnerParams::from_utilization(10.0, 0.10).unwrap();
    let sim = DiscreteTaskSim::paper(100, owner.request_prob(), 10.0);
    let exp = JobTimeExperiment::paper_configuration(sim, 10, 77);
    let report = exp.run().expect("experiment runs");
    assert!(
        report.meets_paper_precision(),
        "relative half-width {} exceeds 1%",
        report.relative_half_width()
    );
    let analytic = expected_job_time_int(100, 10, owner);
    assert!(
        report.contains(analytic) || (report.mean - analytic).abs() / analytic < 0.01,
        "analysis {analytic} outside CI [{}, {}]",
        report.lower(),
        report.upper()
    );
}

#[test]
fn expected_task_time_matches_discrete_sim() {
    let owner = OwnerParams::from_utilization(10.0, 0.20).unwrap();
    let sim = DiscreteTaskSim::paper(500, owner.request_prob(), 10.0);
    let mut rng = Xoshiro256StarStar::new(5);
    let mut stats = RunningStats::new();
    for _ in 0..20_000 {
        stats.push(sim.run_task(&mut rng).execution_time);
    }
    let expected = expected_task_time(500.0, owner);
    let rel = (stats.mean() - expected).abs() / expected;
    assert!(rel < 0.01, "sim {} vs model {expected}", stats.mean());
}

#[test]
fn continuous_sim_matches_rate_anchor() {
    // Long tasks see the CPU at rate (1-U): E[time] -> T/(1-U).
    let owner = OwnerWorkload::continuous_exponential(10.0, 0.10).unwrap();
    let ws = ContinuousWorkstation::new(owner);
    let mut rng = Xoshiro256StarStar::new(9);
    let mut stats = RunningStats::new();
    for _ in 0..400 {
        stats.push(ws.run_task(2000.0, &mut rng).execution_time);
    }
    let expected = 2000.0 / 0.9;
    let rel = (stats.mean() - expected).abs() / expected;
    assert!(rel < 0.03, "sim {} vs anchor {expected}", stats.mean());
}

#[test]
fn discrete_and_continuous_agree_at_matched_parameters() {
    // Same O, same U: the two simulators' mean task times should land
    // within a few percent of each other (different think/service
    // distributions, same long-run interference rate).
    let u = 0.10;
    let o = 10.0;
    let t = 1000.0;
    let discrete = DiscreteTaskSim::paper(t as u64, u / (o * (1.0 - u)), o);
    let mut rng = Xoshiro256StarStar::new(3);
    let mut d_stats = RunningStats::new();
    for _ in 0..2_000 {
        d_stats.push(discrete.run_task(&mut rng).execution_time);
    }
    let cont = ContinuousWorkstation::new(OwnerWorkload::continuous_exponential(o, u).unwrap());
    let mut c_stats = RunningStats::new();
    for _ in 0..400 {
        c_stats.push(cont.run_task(t, &mut rng).execution_time);
    }
    let rel = (d_stats.mean() - c_stats.mean()).abs() / d_stats.mean();
    assert!(
        rel < 0.05,
        "discrete {} vs continuous {}",
        d_stats.mean(),
        c_stats.mean()
    );
}
