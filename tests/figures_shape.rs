//! Figure-level integration: every regeneration target produces series
//! with the published qualitative shape (who wins, by what factor,
//! where the knees fall).

use nds_bench::figures::{
    fixed_size_figure, scaled_figure, task_ratio_by_size_figure, task_ratio_figure_w60,
    validation_speedup_figure, validation_time_figure, FixedSizeMetric,
};

#[test]
fn fig1_speedup_concave_and_ordered_by_utilization() {
    let f = fixed_size_figure(1000.0, FixedSizeMetric::Speedup);
    // At every x, lower utilization wins.
    let order = ["util=0.01", "util=0.05", "util=0.1", "util=0.2"];
    for i in 0..f.x.len() {
        for pair in order.windows(2) {
            let hi = f.curve(pair[0]).unwrap()[i];
            let lo = f.curve(pair[1]).unwrap()[i];
            assert!(hi >= lo - 1e-9, "ordering violated at x index {i}");
        }
    }
    // Concavity: increments shrink along each curve.
    let c = f.curve("util=0.05").unwrap();
    let first_gain = c[1] - c[0];
    let last_gain = c[c.len() - 1] - c[c.len() - 2];
    assert!(last_gain < first_gain);
}

#[test]
fn fig2_efficiency_declines_from_near_one() {
    let f = fixed_size_figure(1000.0, FixedSizeMetric::Efficiency);
    for name in ["util=0.01", "util=0.2"] {
        let c = f.curve(name).unwrap();
        assert!(c[0] > 0.8, "{name} starts at {}", c[0]);
        for pair in c.windows(2) {
            assert!(pair[1] <= pair[0] + 1e-9, "{name} not declining");
        }
    }
}

#[test]
fn figs_3_4_weighted_metrics_beat_unweighted() {
    let s = fixed_size_figure(1000.0, FixedSizeMetric::Speedup);
    let ws = fixed_size_figure(1000.0, FixedSizeMetric::WeightedSpeedup);
    for name in ["util=0.05", "util=0.2"] {
        let a = s.curve(name).unwrap();
        let b = ws.curve(name).unwrap();
        for (x, y) in a.iter().zip(b) {
            assert!(y >= x);
        }
    }
}

#[test]
fn figs_5_6_larger_demand_dominates() {
    for metric in [
        FixedSizeMetric::WeightedSpeedup,
        FixedSizeMetric::WeightedEfficiency,
    ] {
        let small = fixed_size_figure(1000.0, metric);
        let large = fixed_size_figure(10_000.0, metric);
        for name in ["util=0.01", "util=0.05", "util=0.1", "util=0.2"] {
            let a = small.curve(name).unwrap();
            let b = large.curve(name).unwrap();
            for i in 0..a.len() {
                assert!(
                    b[i] >= a[i] - 1e-9,
                    "J=10K should dominate J=1K for {name} at index {i}"
                );
            }
        }
    }
}

#[test]
fn fig7_knee_follows_published_thresholds() {
    let f = task_ratio_figure_w60();
    // The 80% crossing should happen near ratio 8 for U=5% and near 12
    // for U=10% at W=60 (the paper's rounded 8/13 sit within +-2).
    for (name, expected) in [("util=0.05", 7.6), ("util=0.1", 11.6)] {
        let c = f.curve(name).unwrap();
        let crossing =
            f.x.iter()
                .zip(c)
                .find(|(_, &y)| y >= 0.80)
                .map(|(&x, _)| x)
                .expect("curve must cross 80%");
        assert!(
            (crossing - expected).abs() <= 2.0,
            "{name} crossed at {crossing}, expected near {expected}"
        );
    }
}

#[test]
fn fig8_sensitivity_grows_with_pool_size() {
    let f = task_ratio_by_size_figure();
    // At a fixed low ratio, bigger pools are less efficient.
    let idx = 9; // ratio = 10
    let mut prev = f64::INFINITY;
    for name in [
        "numProc=2",
        "numProc=4",
        "numProc=8",
        "numProc=20",
        "numProc=60",
        "numProc=100",
    ] {
        let y = f.curve(name).unwrap()[idx];
        assert!(y <= prev + 1e-9, "{name} should be below smaller pools");
        prev = y;
    }
}

#[test]
fn fig9_inflation_anchors() {
    let f = scaled_figure();
    let last = f.x.len() - 1;
    for (name, expected) in [
        ("util=0.01", 113.9),
        ("util=0.05", 130.1),
        ("util=0.1", 144.4),
        ("util=0.2", 171.4),
    ] {
        let y = f.curve(name).unwrap()[last];
        assert!((y - expected).abs() < 1.0, "{name} at W=100 was {y}");
    }
}

#[test]
fn fig10_measured_between_dedicated_and_model_envelope() {
    let f = validation_time_figure(3);
    for demand in [1u32, 16] {
        let measured = f.curve(&format!("measured {demand}")).unwrap();
        for (i, &m) in measured.iter().enumerate() {
            let w = f.x[i];
            let dedicated = f64::from(demand) * 60.0 / w;
            assert!(m >= dedicated * 0.999, "faster than dedicated at W={w}");
            // Short tasks can be stretched badly by a single unlucky
            // exponential burst (mean 10 s), so the envelope is
            // multiplicative plus a few bursts of absolute slack.
            assert!(
                m <= dedicated * 1.15 + 60.0,
                "3% utilization cannot inflate a {dedicated}s task to {m}s"
            );
        }
    }
}

#[test]
fn fig11_speedups_near_perfect_at_3pct() {
    let f = validation_speedup_figure(3);
    let d16 = f.curve("demand 16").unwrap();
    for (i, &s) in d16.iter().enumerate() {
        let w = f.x[i];
        assert!(s >= 0.75 * w, "speedup {s} too low at W={w}");
        assert!(s <= 1.2 * w, "speedup {s} implausible at W={w}");
    }
}
