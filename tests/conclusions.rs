//! C1/C2 integration: every quantitative claim in the paper's §5
//! conclusions reproduces from the model.

use nds::core::conclusions::check_all_conclusions;
use nds::model::params::OwnerParams;
use nds::model::scaled::inflation_at;
use nds::model::solver::required_task_ratio;

#[test]
fn all_published_conclusions_reproduce() {
    let checks = check_all_conclusions().expect("checks run");
    let failures: Vec<String> = checks
        .iter()
        .filter(|c| !c.passed)
        .map(|c| {
            format!(
                "{}: published {} vs reproduced {:.3}",
                c.claim, c.published, c.reproduced
            )
        })
        .collect();
    assert!(
        failures.is_empty(),
        "failed claims:\n{}",
        failures.join("\n")
    );
}

#[test]
fn c1_thresholds_are_8_13_20_at_w100() {
    let cases = [(0.05, 8.0), (0.10, 13.0), (0.20, 20.0)];
    for (u, published) in cases {
        let owner = OwnerParams::from_utilization(10.0, u).unwrap();
        let ratio = required_task_ratio(100, owner, 0.80).unwrap();
        assert!(
            (ratio - published).abs() <= 1.5,
            "U={u}: required ratio {ratio} vs published {published}"
        );
    }
}

#[test]
fn c2_scaled_inflation_percentages() {
    let cases = [(0.01, 14.0), (0.05, 30.0), (0.10, 44.0), (0.20, 71.0)];
    for (u, published_pct) in cases {
        let owner = OwnerParams::from_utilization(10.0, u).unwrap();
        let infl = inflation_at(100.0, 100, owner).unwrap() * 100.0;
        assert!(
            (infl - published_pct).abs() < 1.0,
            "U={u}: inflation {infl:.1}% vs published {published_pct}%"
        );
    }
}

#[test]
fn thresholds_monotone_in_utilization_and_size() {
    let mut prev = 0.0;
    for u in [0.02, 0.05, 0.10, 0.15, 0.20, 0.25] {
        let owner = OwnerParams::from_utilization(10.0, u).unwrap();
        let r = required_task_ratio(60, owner, 0.80).unwrap();
        assert!(r > prev, "threshold fell at U={u}");
        prev = r;
    }
    let owner = OwnerParams::from_utilization(10.0, 0.10).unwrap();
    let mut prev = 0.0;
    for w in [2u32, 4, 8, 20, 60, 100, 200] {
        let r = required_task_ratio(w, owner, 0.80).unwrap();
        assert!(r > prev, "threshold fell at W={w}");
        prev = r;
    }
}
