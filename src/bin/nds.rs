//! `nds` — command-line feasibility tool.
//!
//! ```text
//! nds analyze --job 7200 --workstations 60 --owner-demand 10 --utilization 0.10
//! nds thresholds [--target 0.8]
//! nds validate [--quick]
//! nds sensitivity --task 100 --workstations 60 --owner-demand 10 --utilization 0.10
//! nds sched --workstations 16 --utilization 0.10 --eviction checkpoint
//! nds stream --rate 0.02 --utilization 0.10 --jobs 400
//! nds gang --gang-size 8 --utilization 0.10 --gang suspend-all
//! nds trace sched --out traces
//! nds replay cluster_day.csv --machines 64 --chunk 4096
//! ```

use nds::cluster::OwnerWorkload;
use nds::core::conclusions::check_all_conclusions;
use nds::core::prelude::*;
use nds::core::report::Table;
use nds::core::sim::{
    closed, poisson, Backend, Flight, JobShape, Sim, SimBuilder, SimError, SyntheticTrace,
    TraceWorkload,
};
use nds::model::sensitivity::elasticities;
use nds::model::solver::required_task_ratio;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("thresholds") => cmd_thresholds(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some("sensitivity") => cmd_sensitivity(&args[1..]),
        Some("sched") => cmd_sched(&args[1..]),
        Some("stream") => cmd_stream(&args[1..]),
        Some("gang") => cmd_gang(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("diff-trace") => cmd_diff_trace(&args[1..]),
        Some("help") | None => {
            print_usage();
            0
        }
        Some(other) => {
            eprintln!("unknown command: {other}\n");
            print_usage();
            2
        }
    };
    std::process::exit(code);
}

fn print_usage() {
    println!(
        "nds — feasibility of cycle-stealing on non-dedicated workstations\n\
         (Leutenegger & Sun, SC'93)\n\n\
         commands:\n\
         \x20 analyze     --job J --workstations W --owner-demand O --utilization U\n\
         \x20             [--target 0.8]      full feasibility assessment\n\
         \x20 thresholds  [--target 0.8]      required task ratios by U and W\n\
         \x20 validate    [--quick]           rerun the paper's conclusion checks\n\
         \x20 sensitivity --task T --workstations W --owner-demand O --utilization U\n\
         \x20                                 which knob moves weighted efficiency most\n\
         \x20 sched       [--workstations W] [--utilization U] [--owner-demand O]\n\
         \x20             [--jobs N] [--tasks K] [--task-demand T] [--arrival-gap G]\n\
         \x20             [--placement random|round-robin|least-loaded]\n\
         \x20             [--eviction restart|suspend|migrate|checkpoint|adaptive]\n\
         \x20             [--overhead C] [--interval I] [--threshold T]\n\
         \x20             [--discipline fcfs|sjf] [--seed S] [--reps R]\n\
         \x20                                 cycle-stealing pool scheduler experiment\n\
         \x20 stream      [--rate L] [--workstations W] [--utilization U]\n\
         \x20             [--owner-demand O] [--tasks K] [--task-demand T]\n\
         \x20             [--jobs N] [--warmup M] [--batches B] [--seed S]\n\
         \x20             (plus the sched placement/eviction/discipline flags)\n\
         \x20                                 open Poisson stream, steady-state response CI\n\
         \x20 gang        [--workstations W] [--utilization U] [--owner-demand O]\n\
         \x20             [--jobs N] [--gang-size K] [--task-demand T] [--arrival-gap G]\n\
         \x20             [--gang suspend-all|migrate-all|partial|off] [--overhead C]\n\
         \x20             [--min-running F | --min-running-frac X]\n\
         \x20                                 partial-gang floor (implies --gang partial)\n\
         \x20             [--placement P] [--discipline D] [--seed S] [--reps R]\n\
         \x20                                 gang co-allocation vs independent tasks\n\
         \x20 trace       [sched|stream|gang] [--out DIR] [--workstations W]\n\
         \x20             [--utilization U] [--owner-demand O] [--seed S] [--reps R]\n\
         \x20             [--metrics-every T] [--cheap] [--trace-capacity N]\n\
         \x20                                 flight-record a scenario: JSONL event trace,\n\
         \x20                                 Chrome/Perfetto JSON, metrics + profile JSON\n\
         \x20                                 (records engine events; to replay a job\n\
         \x20                                 trace as a workload, see `replay` below)\n\
         \x20 replay      [FILE.csv|FILE.jsonl] [--machines M] [--jobs N] [--warmup K]\n\
         \x20             [--chunk C] [--utilization U] [--owner-demand O] [--batches B]\n\
         \x20             [--seed S] [--reps R] [--shards P] [--max-events E]\n\
         \x20                                 replay a job trace through the streaming\n\
         \x20                                 engine in O(chunk) memory; with no FILE,\n\
         \x20                                 a synthetic datacenter day (diurnal\n\
         \x20                                 arrivals, Pareto sizes, hot/cool owners);\n\
         \x20                                 unrelated to `trace` above, which records\n\
         \x20                                 the engine's own event log\n\
         \x20 diff-trace  A B [--context K]   first divergence between two JSONL traces\n\
         \x20 help                            this message\n\n\
         sched/stream/gang also accept --trace DIR (record the run's flight data\n\
         under DIR) and --metrics-every T (sim-time snapshot interval, default 100).\n\
         sched/stream/gang accept --mtbf M [--mttr R] (machine failure injection:\n\
         exponential crashes with mean uptime M and mean repair R, default 15; a\n\
         crash destroys the running guest's unprotected progress whatever the\n\
         eviction policy — only checkpointed work survives). --eviction adaptive\n\
         restarts below --threshold T invested progress (default 60), then\n\
         checkpoints every --interval I.\n\
         sched/stream/gang/trace accept --progress SECS (heartbeat to stderr every\n\
         SECS wall-clock seconds), --cheap (bounded-cost recording tier: lifecycle\n\
         records only, grid-throttled state, host profiling off), and\n\
         --trace-capacity N (keep only the newest N records in a ring)"
    );
}

/// Pull a numeric `--name value` from an argument list.
fn flag(args: &[String], name: &str) -> Option<f64> {
    string_flag(args, name).and_then(|v| v.parse().ok())
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn require(args: &[String], name: &str) -> Result<f64, String> {
    flag(args, name).ok_or_else(|| format!("missing or invalid {name} <value>"))
}

fn cmd_analyze(args: &[String]) -> i32 {
    let parsed = (|| -> Result<_, String> {
        Ok((
            require(args, "--job")?,
            require(args, "--workstations")? as u32,
            require(args, "--owner-demand")?,
            require(args, "--utilization")?,
            flag(args, "--target").unwrap_or(0.80),
        ))
    })();
    let (j, w, o, u, target) = match parsed {
        Ok(p) => p,
        Err(e) => {
            eprintln!("analyze: {e}");
            return 2;
        }
    };
    let analyzer = match FeasibilityAnalyzer::builder()
        .job_demand(j)
        .workstations(w)
        .owner_demand(o)
        .owner_utilization(u)
        .target_weighted_efficiency(target)
        .build()
    {
        Ok(a) => a,
        Err(e) => {
            eprintln!("analyze: {e}");
            return 2;
        }
    };
    let a = match analyzer.assess() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("analyze: {e}");
            return 1;
        }
    };
    let m = &a.metrics;
    let mut t = Table::new(format!(
        "feasibility of J={j} on W={w} stations (O={o}, U={u})"
    ))
    .headers(["metric", "value"]);
    t.row(["task ratio T/O", &format!("{:.2}", m.task_ratio)]);
    t.row(["E[task time]", &format!("{:.2}", m.expected_task_time)]);
    t.row(["E[job time]", &format!("{:.2}", m.expected_job_time)]);
    t.row(["p95 job time", &format!("{:.2}", a.job_time_p95)]);
    t.row(["speedup", &format!("{:.2}", m.speedup)]);
    t.row(["weighted speedup", &format!("{:.2}", m.weighted_speedup)]);
    t.row(["efficiency", &format!("{:.4}", m.efficiency)]);
    t.row([
        "weighted efficiency",
        &format!("{:.4}", m.weighted_efficiency),
    ]);
    t.row([
        "required task ratio",
        &format!("{:.2}", a.required_task_ratio),
    ]);
    t.row([
        "max useful pool",
        &a.max_useful_workstations
            .map_or("none".to_string(), |w| w.to_string()),
    ]);
    t.row([
        "verdict",
        if a.feasible { "FEASIBLE" } else { "infeasible" },
    ]);
    print!("{}", t.render());
    i32::from(!a.feasible)
}

fn cmd_thresholds(args: &[String]) -> i32 {
    let target = flag(args, "--target").unwrap_or(0.80);
    let pools = [2u32, 8, 20, 60, 100];
    let mut t = Table::new(format!(
        "required task ratio for weighted efficiency >= {target}"
    ))
    .headers({
        let mut h = vec!["U".to_string()];
        h.extend(pools.iter().map(|w| format!("W={w}")));
        h
    });
    for u in [0.01, 0.05, 0.10, 0.20] {
        let owner = match OwnerParams::from_utilization(10.0, u) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("thresholds: {e}");
                return 1;
            }
        };
        let mut row = vec![format!("{u:.2}")];
        for &w in &pools {
            match required_task_ratio(w, owner, target) {
                Ok(r) => row.push(format!("{r:.1}")),
                Err(_) => row.push("-".into()),
            }
        }
        t.row(row);
    }
    print!("{}", t.render());
    0
}

fn cmd_validate(args: &[String]) -> i32 {
    let checks = match check_all_conclusions() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("validate: {e}");
            return 1;
        }
    };
    let mut t = Table::new("paper §5 conclusions vs this implementation").headers([
        "claim",
        "published",
        "reproduced",
        "pass",
    ]);
    let mut failures = 0;
    for c in &checks {
        if !c.passed {
            failures += 1;
        }
        t.row([
            c.claim.clone(),
            format!("{}", c.published),
            format!("{:.3}", c.reproduced),
            if c.passed {
                "yes".into()
            } else {
                "NO".to_string()
            },
        ]);
    }
    print!("{}", t.render());
    if !has_flag(args, "--quick") {
        // Also spot-check simulation-vs-analysis agreement.
        let suite = ValidationSuite::quick(2024);
        match suite.validate_point(1000.0, 10, 0.10) {
            Ok(row) => {
                println!(
                    "\nsim vs analysis at (J=1000, W=10, U=10%): rel err {:.4} ({})",
                    row.outcome.relative_error,
                    if row.outcome.agrees() {
                        "agrees"
                    } else {
                        "DISAGREES"
                    }
                );
                if !row.outcome.agrees() {
                    failures += 1;
                }
            }
            Err(e) => {
                eprintln!("validate: {e}");
                return 1;
            }
        }
    }
    println!(
        "\n{}/{} checks passed",
        checks.len() - failures,
        checks.len()
    );
    i32::from(failures > 0)
}

/// Pull an integer `--name value` in `[0, max]`, erroring (not
/// truncating) on fractional or out-of-range input.
fn int_flag(args: &[String], name: &str, default: u64, max: u64) -> Result<u64, String> {
    match string_flag(args, name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .ok()
            .filter(|&n| n <= max)
            .ok_or_else(|| format!("{name} expects an integer in 0..={max}, got {v}")),
    }
}

/// Pull the raw `--name value` from an argument list.
fn string_flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Parse the placement/eviction/discipline policy flags shared by the
/// `sched` and `stream` commands.
fn policy_flags(
    args: &[String],
) -> Result<(PlacementKind, EvictionPolicy, QueueDiscipline), String> {
    let overhead = flag(args, "--overhead").unwrap_or(2.0);
    let interval = flag(args, "--interval").unwrap_or(30.0);
    let placement = match string_flag(args, "--placement") {
        None => PlacementKind::LeastLoaded,
        Some(s) => {
            PlacementKind::parse(s).ok_or_else(|| format!("unknown placement policy {s}"))?
        }
    };
    let eviction = match string_flag(args, "--eviction").unwrap_or("suspend") {
        "restart" => EvictionPolicy::Restart,
        "suspend" | "suspend-resume" => EvictionPolicy::SuspendResume,
        "migrate" => EvictionPolicy::Migrate { overhead },
        "checkpoint" => EvictionPolicy::Checkpoint { interval, overhead },
        "adaptive" => EvictionPolicy::Adaptive {
            threshold: flag(args, "--threshold").unwrap_or(60.0),
            interval,
            overhead,
        },
        other => return Err(format!("unknown eviction policy {other}")),
    };
    let discipline = match string_flag(args, "--discipline").unwrap_or("fcfs") {
        "fcfs" => QueueDiscipline::Fcfs,
        "sjf" | "sjf-backfill" => QueueDiscipline::SjfBackfill,
        other => return Err(format!("unknown queue discipline {other}")),
    };
    Ok((placement, eviction, discipline))
}

/// Map a [`SimError`] to the CLI's exit-code convention: 2 for
/// configuration mistakes, 1 for runs that could not complete.
/// Apply the observability flags shared by `sched`/`stream`/`gang`/
/// `trace` to a simulation builder: `--progress SECS` (stderr
/// heartbeat), `--cheap` (bounded-cost recording tier), and
/// `--trace-capacity N` (ring-buffer record storage).
fn obs_flags(mut b: SimBuilder, args: &[String]) -> Result<SimBuilder, String> {
    if let Some(every) = string_flag(args, "--progress") {
        let every = every
            .parse::<f64>()
            .ok()
            .filter(|v| v.is_finite() && *v > 0.0)
            .ok_or_else(|| format!("--progress expects seconds > 0, got {every}"))?;
        b = b.progress(every);
    }
    if has_flag(args, "--cheap") {
        b = b.trace_cheap(true);
    }
    let cap = int_flag(args, "--trace-capacity", 0, 1 << 32)? as usize;
    if cap > 0 {
        b = b.trace_capacity(cap);
    }
    Ok(b)
}

/// Parse the failure-injection flags shared by `sched`/`stream`/`gang`:
/// `--mtbf M` arms a [`FailureModel`] with exponential uptime of mean
/// `M` and exponential repair of mean `--mttr R` (default 15); without
/// `--mtbf` the run injects no failures and is bit-identical to the
/// pre-failure engine. `--mttr` without `--mtbf` is a usage error.
fn fault_flags(b: SimBuilder, args: &[String]) -> Result<SimBuilder, String> {
    let Some(mtbf) = flag(args, "--mtbf") else {
        if string_flag(args, "--mttr").is_some() {
            return Err("--mttr without --mtbf (nothing to repair)".into());
        }
        return Ok(b);
    };
    let mttr = flag(args, "--mttr").unwrap_or(15.0);
    let model = FailureModel::exponential(mtbf, mttr)
        .map_err(|e| format!("--mtbf {mtbf} --mttr {mttr}: {e}"))?;
    Ok(b.failures(model))
}

fn sim_error_code(e: &SimError) -> i32 {
    match e {
        // Stats errors are configuration mistakes too: the batch/window
        // split could not form an interval.
        SimError::InvalidPool { .. }
        | SimError::InvalidWorkload { .. }
        | SimError::InvalidPolicy { .. }
        | SimError::MissingWorkload
        | SimError::UnsupportedBackend { .. }
        | SimError::Stats(_) => 2,
        SimError::Sched(_) | SimError::Cluster(_) => 1,
    }
}

/// Run the built experiment under the flight recorder and write every
/// replication's exports under `dir` (`repN.trace.jsonl`,
/// `repN.chrome.json`, `repN.metrics.json`, `repN.profile.json`).
/// Shared by `nds trace` and the `--trace DIR` flag on the
/// `sched`/`stream`/`gang` commands.
fn trace_to_dir(sim: &Sim, dir: &str) -> Result<Vec<Flight>, String> {
    let flights = sim
        .run_flight()
        .map_err(|e| format!("flight recorder: {e}"))?;
    let dir = std::path::Path::new(dir);
    std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    for f in &flights {
        let rep = f.replication;
        let write = |name: String, body: String| {
            let path = dir.join(name);
            std::fs::write(&path, body).map_err(|e| format!("writing {}: {e}", path.display()))
        };
        write(format!("rep{rep}.trace.jsonl"), f.to_jsonl())?;
        write(format!("rep{rep}.chrome.json"), f.to_chrome_json())?;
        write(format!("rep{rep}.metrics.json"), f.metrics_json())?;
        write(format!("rep{rep}.profile.json"), f.profile_json())?;
    }
    Ok(flights)
}

/// Handle a command's optional `--trace DIR` flag: flight-record the
/// already-run experiment and report where the exports went. Returns
/// `false` if tracing was requested but failed.
fn maybe_trace(cmd: &str, args: &[String], sim: &Sim) -> bool {
    let Some(dir) = string_flag(args, "--trace") else {
        return true;
    };
    match trace_to_dir(sim, dir) {
        Ok(flights) => {
            let records: usize = flights.iter().map(|f| f.recorder.events().len()).sum();
            println!(
                "\ntraced {} replication(s): {records} records -> {dir}/rep*.{{trace.jsonl,chrome.json,metrics.json,profile.json}}",
                flights.len()
            );
            true
        }
        Err(e) => {
            eprintln!("{cmd}: {e}");
            false
        }
    }
}

fn cmd_sched(args: &[String]) -> i32 {
    // Defaults mirror the canonical scheduler scenario so the CLI, the
    // ext_sched_policies bench, and tests all describe one experiment.
    let scenario = Scenario::SchedulerPool;
    let default_w = u64::from(scenario.workstations()[0]);
    // (--tasks defaults to one per workstation, matching the mix when
    // W is the scenario's 16.)
    let (default_jobs, _, default_gap) = scenario.sched_job_mix().expect("scheduler scenario");
    let ints = (|| -> Result<_, String> {
        let w = int_flag(args, "--workstations", default_w, u64::from(u32::MAX))? as u32;
        Ok((
            w,
            int_flag(args, "--jobs", u64::from(default_jobs), u64::from(u32::MAX))? as u32,
            int_flag(args, "--tasks", u64::from(w), u64::from(u32::MAX))? as u32,
            int_flag(args, "--seed", 2024, u64::MAX)?,
            int_flag(args, "--reps", 5, 1 << 20)?.max(1),
        ))
    })();
    let (w, jobs, tasks, seed, reps) = match ints {
        Ok(v) => v,
        Err(e) => {
            eprintln!("sched: {e}");
            return 2;
        }
    };
    let u = flag(args, "--utilization").unwrap_or(0.10);
    let o = flag(args, "--owner-demand").unwrap_or(10.0);
    let task_demand = flag(args, "--task-demand")
        .unwrap_or_else(|| scenario.sched_task_demand().expect("scheduler scenario"));
    let arrival_gap = flag(args, "--arrival-gap").unwrap_or(default_gap);
    let (placement, eviction, discipline) = match policy_flags(args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("sched: {e}");
            return 2;
        }
    };

    let owner = match OwnerWorkload::continuous_exponential(o, u) {
        Ok(owner) => owner,
        Err(e) => {
            eprintln!("sched: {e}");
            return 2;
        }
    };
    let specs = JobSpec::stream(jobs, tasks, task_demand, arrival_gap);
    let builder = Sim::pool(w)
        .owners(owner)
        .placement(placement)
        .eviction(eviction)
        .discipline(discipline)
        .calibration(10_000.0)
        .seed(seed)
        .replications(reps)
        .backend(Backend::Sched)
        .metrics_every(flag(args, "--metrics-every").unwrap_or(100.0))
        .workload(closed(specs));
    let builder = match obs_flags(builder, args).and_then(|b| fault_flags(b, args)) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("sched: {e}");
            return 2;
        }
    };
    let sim = match builder.build() {
        Ok(sim) => sim,
        Err(e) => {
            eprintln!("sched: {e}");
            return sim_error_code(&e);
        }
    };
    let report = match sim.run() {
        Ok(report) => report,
        Err(e) => {
            eprintln!("sched: {e}");
            return sim_error_code(&e);
        }
    };

    let mut t = Table::new(format!(
        "cycle-stealing pool: W={w}, U={u}, O={o}, {jobs} jobs x {tasks} tasks x {task_demand}, \
         {} placement, {} eviction, {} queue ({reps} reps)",
        placement.name(),
        eviction.label(),
        discipline.name(),
    ))
    .headers(["metric", "mean"]);
    t.row(["makespan", &format!("{:.1}", report.mean_makespan())]);
    t.row([
        "mean job response",
        &format!("{:.1}", report.mean_over(|m| m.mean_response_time())),
    ]);
    t.row([
        "delivered CPU",
        &format!("{:.1}", report.mean_over(|m| m.delivered)),
    ]);
    t.row([
        "goodput",
        &format!("{:.1}", report.mean_over(|m| m.goodput)),
    ]);
    t.row(["wasted work", &format!("{:.1}", report.mean_wasted())]);
    t.row([
        "checkpoint overhead",
        &format!("{:.1}", report.mean_over(|m| m.checkpoint_overhead)),
    ]);
    t.row([
        "goodput fraction",
        &format!("{:.4}", report.mean_goodput_fraction()),
    ]);
    t.row(["evictions", &format!("{:.1}", report.mean_evictions())]);
    t.row([
        "migrations",
        &format!("{:.1}", report.mean_over(|m| m.migrations as f64)),
    ]);
    t.row([
        "restarts",
        &format!("{:.1}", report.mean_over(|m| m.restarts as f64)),
    ]);
    t.row([
        "mean queue wait",
        &format!("{:.2}", report.mean_queue_wait()),
    ]);
    t.row([
        "mean available machines",
        &format!("{:.2}", report.mean_over(|m| m.mean_available_machines)),
    ]);
    if flag(args, "--mtbf").is_some() {
        t.row([
            "crashes",
            &format!("{:.1}", report.mean_over(|m| m.crashes as f64)),
        ]);
        t.row([
            "crash-destroyed CPU",
            &format!("{:.1}", report.mean_over(|m| m.crash_lost)),
        ]);
        t.row([
            "machine downtime",
            &format!("{:.1}", report.mean_over(|m| m.downtime)),
        ]);
        t.row([
            "observed availability",
            &format!(
                "{:.4}",
                report.mean_over(|m| if m.makespan == 0.0 {
                    1.0
                } else {
                    1.0 - m.downtime / (f64::from(w) * m.makespan)
                })
            ),
        ]);
    }
    print!("{}", t.render());
    let consistent = report.is_consistent();
    println!(
        "\nwork conservation (delivered == goodput + wasted + ckpt): {}",
        if consistent { "holds" } else { "VIOLATED" }
    );
    let traced = maybe_trace("sched", args, &sim);
    i32::from(!(consistent && traced))
}

fn cmd_stream(args: &[String]) -> i32 {
    // Defaults mirror the open-stream scenario, the open-system
    // counterpart of `sched`'s closed defaults.
    let scenario = Scenario::OpenStream;
    let default_w = u64::from(scenario.workstations()[0]);
    let (default_tasks, default_demand) = scenario.open_job_shape().expect("open scenario");
    let (default_jobs, default_warmup) = scenario.open_window().expect("open scenario");
    let ints = (|| -> Result<_, String> {
        Ok((
            int_flag(args, "--workstations", default_w, u64::from(u32::MAX))? as u32,
            int_flag(
                args,
                "--tasks",
                u64::from(default_tasks),
                u64::from(u32::MAX),
            )? as u32,
            int_flag(args, "--jobs", default_jobs as u64, 1 << 24)? as usize,
            int_flag(args, "--warmup", default_warmup as u64, 1 << 24)? as usize,
            int_flag(args, "--batches", 20, 1 << 16)? as usize,
            int_flag(args, "--seed", 2024, u64::MAX)?,
            int_flag(args, "--reps", 1, 1 << 20)?.max(1),
        ))
    })();
    let (w, tasks, jobs, warmup, batches, seed, reps) = match ints {
        Ok(v) => v,
        Err(e) => {
            eprintln!("stream: {e}");
            return 2;
        }
    };
    let rate = flag(args, "--rate")
        .unwrap_or_else(|| scenario.open_arrival_rate().expect("open scenario"));
    let u = flag(args, "--utilization").unwrap_or(0.10);
    let o = flag(args, "--owner-demand").unwrap_or(10.0);
    let task_demand = flag(args, "--task-demand").unwrap_or(default_demand);
    let (placement, eviction, discipline) = match policy_flags(args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("stream: {e}");
            return 2;
        }
    };
    let owner = match OwnerWorkload::continuous_exponential(o, u) {
        Ok(owner) => owner,
        Err(e) => {
            eprintln!("stream: {e}");
            return 2;
        }
    };
    let builder = Sim::pool(w)
        .owners(owner)
        .placement(placement)
        .eviction(eviction)
        .discipline(discipline)
        .calibration(10_000.0)
        .seed(seed)
        .replications(reps)
        .batches(batches)
        .metrics_every(flag(args, "--metrics-every").unwrap_or(100.0))
        .workload(
            poisson(rate, JobShape::new(tasks, task_demand))
                .jobs(jobs)
                .warmup(warmup),
        );
    let builder = match obs_flags(builder, args).and_then(|b| fault_flags(b, args)) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("stream: {e}");
            return 2;
        }
    };
    let sim = match builder.build() {
        Ok(sim) => sim,
        Err(e) => {
            eprintln!("stream: {e}");
            return sim_error_code(&e);
        }
    };
    let report = match sim.run() {
        Ok(report) => report,
        Err(e) => {
            eprintln!("stream: {e}");
            return sim_error_code(&e);
        }
    };
    let ss = report
        .steady_state
        .expect("open workloads always report steady state");

    let mut t = Table::new(format!(
        "open Poisson stream: λ={rate}, W={w}, U={u}, O={o}, {jobs} jobs x {tasks} tasks x \
         {task_demand} ({warmup} warm-up, {} placement, {} eviction, {} queue, {reps} reps)",
        placement.name(),
        eviction.label(),
        discipline.name(),
    ))
    .headers(["metric", "value"]);
    t.row([
        "steady-state mean response",
        &format!("{:.1}", ss.response.mean),
    ]);
    t.row([
        "90% confidence interval",
        &format!("[{:.1}, {:.1}]", ss.response.lower(), ss.response.upper()),
    ]);
    t.row([
        "relative half-width",
        &format!("{:.4}", ss.response.relative_half_width()),
    ]);
    t.row([
        "batches x batch size",
        &format!("{} x {}", ss.response.batches, ss.response.batch_size),
    ]);
    t.row([
        "batch lag-1 autocorrelation",
        &format!(
            "{:+.3} ({})",
            ss.diagnostic.lag1,
            if ss.diagnostic.acceptable {
                "acceptable"
            } else {
                "grow the batch size"
            }
        ),
    ]);
    t.row([
        "observed jobs (post warm-up)",
        &report.response.jobs.to_string(),
    ]);
    t.row([
        "fastest / slowest response",
        &format!("{:.1} / {:.1}", report.response.min, report.response.max),
    ]);
    t.row(["mean makespan", &format!("{:.1}", report.mean_makespan())]);
    t.row([
        "goodput fraction",
        &format!("{:.4}", report.mean_goodput_fraction()),
    ]);
    t.row([
        "mean queue wait",
        &format!("{:.2}", report.mean_queue_wait()),
    ]);
    print!("{}", t.render());
    let consistent = report.is_consistent();
    println!(
        "\nwork conservation (delivered == goodput + wasted + ckpt): {}",
        if consistent { "holds" } else { "VIOLATED" }
    );
    let traced = maybe_trace("stream", args, &sim);
    i32::from(!(consistent && traced))
}

fn cmd_gang(args: &[String]) -> i32 {
    // Defaults mirror the gang scenario so the CLI, the ext_gang bench,
    // and the tests all describe one experiment family.
    let scenario = Scenario::GangPool;
    let default_w = u64::from(scenario.workstations()[0]);
    let (default_jobs, default_size, default_demand, default_gap) =
        scenario.gang_job_mix().expect("gang scenario");
    let ints = (|| -> Result<_, String> {
        Ok((
            int_flag(args, "--workstations", default_w, u64::from(u32::MAX))? as u32,
            int_flag(args, "--jobs", u64::from(default_jobs), u64::from(u32::MAX))? as u32,
            int_flag(
                args,
                "--gang-size",
                u64::from(default_size),
                u64::from(u32::MAX),
            )? as u32,
            int_flag(args, "--min-running", 0, u64::from(u32::MAX))? as u32,
            int_flag(args, "--seed", 2024, u64::MAX)?,
            int_flag(args, "--reps", 5, 1 << 20)?.max(1),
        ))
    })();
    let (w, jobs, gang_size, min_running, seed, reps) = match ints {
        Ok(v) => v,
        Err(e) => {
            eprintln!("gang: {e}");
            return 2;
        }
    };
    let u = flag(args, "--utilization").unwrap_or(0.10);
    let o = flag(args, "--owner-demand").unwrap_or(10.0);
    let task_demand = flag(args, "--task-demand").unwrap_or(default_demand);
    let arrival_gap = flag(args, "--arrival-gap").unwrap_or(default_gap);
    let overhead = flag(args, "--overhead").unwrap_or(2.0);
    // An explicit floor flag selects the partial policy unless the
    // caller named one (`--min-running 0` clamps to 1, like every
    // other surface); `--gang partial` without a floor defaults to
    // half the gang (rounded up by the per-job clamp). A fractional
    // floor picks the PartialFrac spelling directly.
    let min_running_given = has_flag(args, "--min-running");
    let frac = flag(args, "--min-running-frac");
    let default_policy = if min_running_given || frac.is_some() {
        "partial"
    } else {
        "suspend-all"
    };
    let policy_name = string_flag(args, "--gang").unwrap_or(default_policy);
    let gang = match (policy_name, frac) {
        ("partial" | "min-running", Some(min_running_frac)) => {
            Some(GangPolicy::PartialFrac { min_running_frac })
        }
        _ => GangPolicy::parse(
            policy_name,
            overhead,
            if min_running_given {
                min_running
            } else {
                gang_size.div_ceil(2)
            },
        ),
    };
    let gang = match gang {
        Some(g) => g,
        None => {
            eprintln!(
                "gang: unknown gang policy {policy_name} \
                 (suspend-all | migrate-all | partial | off)"
            );
            return 2;
        }
    };
    if let Err((field, reason)) = gang.validate() {
        eprintln!("gang: {field}: {reason}");
        return 2;
    }
    let (placement, eviction, discipline) = match policy_flags(args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("gang: {e}");
            return 2;
        }
    };
    let owner = match OwnerWorkload::continuous_exponential(o, u) {
        Ok(owner) => owner,
        Err(e) => {
            eprintln!("gang: {e}");
            return 2;
        }
    };
    let specs = JobSpec::stream(jobs, gang_size, task_demand, arrival_gap);
    let build = |gang: GangPolicy| -> Result<Sim, String> {
        let builder = Sim::pool(w)
            .owners(&owner)
            .placement(placement)
            .eviction(eviction)
            .gang(gang)
            .discipline(discipline)
            .calibration(10_000.0)
            .seed(seed)
            .replications(reps)
            .backend(Backend::Sched)
            .metrics_every(flag(args, "--metrics-every").unwrap_or(100.0))
            .workload(closed(specs.clone()));
        fault_flags(obs_flags(builder, args)?, args)?
            .build()
            .map_err(|e| e.to_string())
    };
    let sim = match build(gang) {
        Ok(sim) => sim,
        Err(e) => {
            eprintln!("gang: {e}");
            return 2;
        }
    };
    let report = match sim.run() {
        Ok(report) => report,
        Err(e) => {
            eprintln!("gang: {e}");
            return sim_error_code(&e);
        }
    };
    // The same workload under independent-task scheduling, for the
    // barrier-premium comparison (skipped when gangs are already off).
    let independent = if gang.is_on() {
        let baseline = build(GangPolicy::Off).and_then(|s| s.run().map_err(|e| e.to_string()));
        match baseline {
            Ok(report) => Some(report),
            Err(e) => {
                eprintln!("gang: independent baseline: {e}");
                return 1;
            }
        }
    } else {
        None
    };

    let mut t = Table::new(format!(
        "gang co-allocation: W={w}, U={u}, O={o}, {jobs} jobs x {gang_size} tasks x {task_demand}, \
         gang {}, {} placement, {} queue ({reps} reps)",
        gang.label(),
        placement.name(),
        discipline.name(),
    ))
    .headers(["metric", "mean"]);
    t.row(["makespan", &format!("{:.1}", report.mean_makespan())]);
    t.row([
        "mean job response",
        &format!("{:.1}", report.mean_over(|m| m.mean_response_time())),
    ]);
    t.row([
        "goodput fraction",
        &format!("{:.4}", report.mean_goodput_fraction()),
    ]);
    t.row(["evictions", &format!("{:.1}", report.mean_evictions())]);
    t.row([
        "gang starts",
        &format!("{:.1}", report.mean_over(|m| m.gang.gang_starts as f64)),
    ]);
    t.row([
        "gang suspensions",
        &format!(
            "{:.1}",
            report.mean_over(|m| m.gang.gang_suspensions as f64)
        ),
    ]);
    t.row([
        "gang migrations",
        &format!("{:.1}", report.mean_over(|m| m.gang.gang_migrations as f64)),
    ]);
    t.row([
        "co-allocation wait / gang",
        &format!("{:.1}", report.mean_coalloc_wait()),
    ]);
    t.row([
        "barrier-stall member-time",
        &format!("{:.1}", report.mean_barrier_stall()),
    ]);
    t.row([
        "gang fragmentation",
        &format!("{:.1}", report.mean_fragmentation()),
    ]);
    if gang.is_partial() {
        t.row([
            "degraded-mode time",
            &format!("{:.1}", report.mean_degraded_time()),
        ]);
        t.row([
            "effective parallelism",
            &format!("{:.2}", report.mean_effective_parallelism()),
        ]);
    }
    if let Some(ind) = &independent {
        t.row([
            "independent-task makespan",
            &format!("{:.1}", ind.mean_makespan()),
        ]);
        t.row([
            "barrier premium",
            &format!(
                "{:.2}x",
                report.mean_makespan() / ind.mean_makespan().max(f64::MIN_POSITIVE)
            ),
        ]);
    }
    print!("{}", t.render());
    let consistent = report.is_consistent()
        && independent.as_ref().is_none_or(SimReport::is_consistent)
        && report
            .runs
            .iter()
            .all(|m| m.gang.lockstep_violations == 0 && m.gang.floor_violations == 0);
    println!(
        "\nwork conservation + gang lockstep/floor invariants: {}",
        if consistent { "hold" } else { "VIOLATED" }
    );
    let traced = maybe_trace("gang", args, &sim);
    i32::from(!(consistent && traced))
}

fn cmd_trace(args: &[String]) -> i32 {
    // Optional leading positional selects which scenario family to
    // flight-record; everything else is flags.
    let (scenario_name, rest): (&str, &[String]) = match args.first() {
        Some(a) if !a.starts_with("--") => (a.as_str(), &args[1..]),
        _ => ("sched", args),
    };
    let ints = (|| -> Result<_, String> {
        Ok((
            int_flag(rest, "--seed", 2024, u64::MAX)?,
            int_flag(rest, "--reps", 1, 1 << 20)?.max(1),
        ))
    })();
    let (seed, reps) = match ints {
        Ok(v) => v,
        Err(e) => {
            eprintln!("trace: {e}");
            return 2;
        }
    };
    let u = flag(rest, "--utilization").unwrap_or(0.10);
    let o = flag(rest, "--owner-demand").unwrap_or(10.0);
    let metrics_every = flag(rest, "--metrics-every").unwrap_or(100.0);
    let out = string_flag(rest, "--out").unwrap_or("traces");
    let owner = match OwnerWorkload::continuous_exponential(o, u) {
        Ok(owner) => owner,
        Err(e) => {
            eprintln!("trace: {e}");
            return 2;
        }
    };

    let build = || -> Result<Sim, String> {
        let base = |w: u32| {
            Sim::pool(w)
                .owners(&owner)
                .calibration(10_000.0)
                .seed(seed)
                .replications(reps)
                .metrics_every(metrics_every)
        };
        let w_flag = |default: u32| -> Result<u32, String> {
            Ok(int_flag(
                rest,
                "--workstations",
                u64::from(default),
                u64::from(u32::MAX),
            )? as u32)
        };
        let builder = match scenario_name {
            "sched" => {
                let sc = Scenario::SchedulerPool;
                let w = w_flag(sc.workstations()[0])?;
                let (jobs, _, gap) = sc.sched_job_mix().expect("scheduler scenario");
                let demand = sc.sched_task_demand().expect("scheduler scenario");
                base(w)
                    .backend(Backend::Sched)
                    .workload(closed(JobSpec::stream(jobs, w, demand, gap)))
            }
            "stream" => {
                let sc = Scenario::OpenStream;
                let w = w_flag(sc.workstations()[0])?;
                let (tasks, demand) = sc.open_job_shape().expect("open scenario");
                let (jobs, warmup) = sc.open_window().expect("open scenario");
                let rate = sc.open_arrival_rate().expect("open scenario");
                base(w).workload(
                    poisson(rate, JobShape::new(tasks, demand))
                        .jobs(jobs)
                        .warmup(warmup),
                )
            }
            "gang" => {
                let sc = Scenario::GangPool;
                let w = w_flag(sc.workstations()[0])?;
                let (jobs, size, demand, gap) = sc.gang_job_mix().expect("gang scenario");
                base(w)
                    .gang(GangPolicy::SuspendAll)
                    .backend(Backend::Sched)
                    .workload(closed(JobSpec::stream(jobs, size, demand, gap)))
            }
            other => {
                return Err(format!(
                    "unknown trace scenario {other} (sched | stream | gang)"
                ))
            }
        };
        obs_flags(builder, rest)?.build().map_err(|e| e.to_string())
    };
    let sim = match build() {
        Ok(sim) => sim,
        Err(e) => {
            eprintln!("trace: {e}");
            return 2;
        }
    };
    let flights = match trace_to_dir(&sim, out) {
        Ok(flights) => flights,
        Err(e) => {
            eprintln!("trace: {e}");
            return 1;
        }
    };

    let mut t = Table::new(format!("flight recorder: {}", sim.label())).headers([
        "rep",
        "events",
        "records",
        "makespan",
        "goodput",
        "trace reconciles",
    ]);
    let mut ok = true;
    for f in &flights {
        // The trace's closing accounting totals must match the run's
        // aggregate metrics exactly — the observer reads the same
        // state the metrics are assembled from.
        let reconciles = f.recorder.final_sample().is_some_and(|s| {
            (s.goodput - f.metrics.goodput).abs() <= 1e-9
                && (s.wasted - f.metrics.wasted).abs() <= 1e-9
        });
        ok &= reconciles;
        t.row([
            f.replication.to_string(),
            f.events.to_string(),
            f.recorder.events().len().to_string(),
            format!("{:.1}", f.metrics.makespan),
            format!("{:.1}", f.metrics.goodput),
            if reconciles {
                "yes".into()
            } else {
                "NO".to_string()
            },
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nwrote rep*.trace.jsonl, rep*.chrome.json (load in Perfetto), \
         rep*.metrics.json, rep*.profile.json under {out}/"
    );
    i32::from(!ok)
}

fn cmd_replay(args: &[String]) -> i32 {
    // Optional leading positional: a CSV/JSONL trace file to replay.
    // Without one, the synthetic datacenter day of
    // `Scenario::DatacenterTrace` (diurnal arrivals, bounded-Pareto
    // sizes, hot/cool owners). Either way the workload streams through
    // the engine in `--chunk`-sized batches, never materialized.
    // (`nds trace` is the unrelated flight recorder: it writes the
    // engine's own event log.)
    let (file, rest): (Option<&str>, &[String]) = match args.first() {
        Some(a) if !a.starts_with("--") => (Some(a.as_str()), &args[1..]),
        _ => (None, args),
    };
    let scenario = Scenario::DatacenterTrace;
    let default_chunk = scenario.trace_stream_chunk().expect("trace scenario") as u64;
    let default_machines = u64::from(scenario.workstations()[0]);
    let parsed = (|| -> Result<_, String> {
        let warmup = match string_flag(rest, "--warmup") {
            None => None,
            Some(_) => Some(int_flag(rest, "--warmup", 0, 1 << 32)? as usize),
        };
        Ok((
            // File replays default to the paper's 16-station pool; the
            // synthetic day defaults to the scenario's 64 machines.
            int_flag(
                rest,
                "--machines",
                if file.is_some() { 16 } else { default_machines },
                u64::from(u32::MAX),
            )? as u32,
            int_flag(rest, "--jobs", 1_200, 1 << 32)? as usize,
            int_flag(rest, "--chunk", default_chunk, 1 << 32)?.max(1) as usize,
            warmup,
            int_flag(rest, "--batches", 20, 1 << 16)? as usize,
            int_flag(rest, "--seed", 0x5EED, u64::MAX)?,
            int_flag(rest, "--reps", 1, 1 << 20)?.max(1),
            int_flag(rest, "--shards", 1, 1 << 10)?.max(1) as usize,
            int_flag(rest, "--max-events", 200_000_000, u64::MAX)?,
        ))
    })();
    let (machines, jobs, chunk, warmup, batches, seed, reps, shards, max_events) = match parsed {
        Ok(v) => v,
        Err(e) => {
            eprintln!("replay: {e}");
            return 2;
        }
    };
    let u = flag(rest, "--utilization").unwrap_or(0.10);
    let o = flag(rest, "--owner-demand").unwrap_or(10.0);

    let built: Result<(Sim, String), SimError> = (|| {
        let base = Sim::pool(machines)
            .stream_chunk(chunk)
            .seed(seed)
            .replications(reps)
            .shards(shards)
            .batches(batches)
            .max_events(max_events);
        match file {
            Some(path) => {
                // File traces carry no owner model, so the pool is
                // homogeneous at the --utilization / --owner-demand
                // behaviour.
                let mut workload = TraceWorkload::from_path(path)?;
                if let Some(k) = warmup {
                    workload = workload.warmup(k);
                }
                let owner =
                    OwnerWorkload::continuous_exponential(o, u).map_err(SimError::Cluster)?;
                let label = format!("{path} on {machines} homogeneous machines (U={u}, O={o})");
                Ok((base.owners(owner).workload(workload).build()?, label))
            }
            None => {
                let mut generator = SyntheticTrace::datacenter(machines, jobs);
                if let Some(k) = warmup {
                    generator = generator.warmup(k);
                }
                let owners = generator.owners(seed, 0)?;
                let label = format!("synthetic datacenter day, {machines} machines x {jobs} jobs");
                Ok((base.owners(owners).workload(generator).build()?, label))
            }
        }
    })();
    let (sim, what) = match built {
        Ok(v) => v,
        Err(e) => {
            eprintln!("replay: {e}");
            return sim_error_code(&e);
        }
    };
    let report = match sim.run() {
        Ok(report) => report,
        Err(e) => {
            eprintln!("replay: {e}");
            return sim_error_code(&e);
        }
    };

    let mut t = Table::new(format!(
        "trace replay: {what}, streamed in chunks of {chunk} ({reps} reps)"
    ))
    .headers(["metric", "value"]);
    if let Some(ss) = &report.steady_state {
        t.row([
            "steady-state mean response",
            &format!("{:.1}", ss.response.mean),
        ]);
        t.row([
            "confidence interval",
            &format!("[{:.1}, {:.1}]", ss.response.lower(), ss.response.upper()),
        ]);
        t.row([
            "batches x batch size",
            &format!("{} x {}", ss.response.batches, ss.response.batch_size),
        ]);
    }
    t.row([
        "observed jobs (post warm-up)",
        &report.response.jobs.to_string(),
    ]);
    t.row([
        "fastest / slowest response",
        &format!("{:.1} / {:.1}", report.response.min, report.response.max),
    ]);
    t.row(["mean makespan", &format!("{:.1}", report.mean_makespan())]);
    t.row([
        "goodput fraction",
        &format!("{:.4}", report.mean_goodput_fraction()),
    ]);
    t.row([
        "mean queue wait",
        &format!("{:.2}", report.mean_queue_wait()),
    ]);
    t.row(["evictions", &format!("{:.1}", report.mean_evictions())]);
    print!("{}", t.render());
    let consistent = report.is_consistent();
    println!(
        "\nwork conservation (delivered == goodput + wasted + ckpt): {}",
        if consistent { "holds" } else { "VIOLATED" }
    );
    i32::from(!consistent)
}

/// Where two JSONL traces first stop agreeing, with enough context to
/// read the mismatch without opening either file.
struct Divergence {
    /// 1-based line number of the first mismatching record.
    line: u64,
    /// The mismatching record from each side (`None` = trace ended).
    a: Option<String>,
    b: Option<String>,
    /// Up to `context` records both sides agreed on, newest last.
    before: Vec<String>,
    /// Up to `context` records following the mismatch on each side.
    after_a: Vec<String>,
    after_b: Vec<String>,
    /// Sim time of the newest agreed record that carried one.
    last_agreed_t: Option<f64>,
}

/// Pull the sim time out of a flight-recorder JSONL record. Every
/// record the recorder writes starts `{"t":<number>,` — anything else
/// (or a bare metrics line) just doesn't advance the clock.
fn record_time(line: &str) -> Option<f64> {
    let rest = line.strip_prefix("{\"t\":")?;
    let end = rest.find([',', '}'])?;
    rest[..end].parse().ok()
}

/// Stream both traces line by line, remembering only a `context`-deep
/// window, and stop at the first mismatch. Memory stays O(context)
/// regardless of trace length. `Ok(None)` means the traces are
/// byte-identical; a length mismatch counts as a divergence at the
/// shorter trace's end.
fn diff_traces(
    path_a: &str,
    path_b: &str,
    context: usize,
) -> Result<(u64, Option<Divergence>), String> {
    use std::io::BufRead;
    let open = |p: &str| -> Result<_, String> {
        let f = std::fs::File::open(p).map_err(|e| format!("{p}: {e}"))?;
        Ok(std::io::BufReader::new(f).lines())
    };
    let mut lines_a = open(path_a)?;
    let mut lines_b = open(path_b)?;
    let next = |lines: &mut std::io::Lines<std::io::BufReader<std::fs::File>>,
                p: &str|
     -> Result<Option<String>, String> {
        lines
            .next()
            .transpose()
            .map_err(|e| format!("reading {p}: {e}"))
    };

    let mut before: std::collections::VecDeque<String> = std::collections::VecDeque::new();
    let mut last_agreed_t = None;
    let mut line = 0u64;
    loop {
        let a = next(&mut lines_a, path_a)?;
        let b = next(&mut lines_b, path_b)?;
        line += 1;
        match (a, b) {
            (None, None) => return Ok((line - 1, None)),
            (a, b) if a == b => {
                let agreed = a.expect("both sides present when equal");
                if let Some(t) = record_time(&agreed) {
                    last_agreed_t = Some(t);
                }
                if context > 0 {
                    if before.len() == context {
                        before.pop_front();
                    }
                    before.push_back(agreed);
                }
            }
            (a, b) => {
                let after = |lines: &mut _, p: &str| -> Result<Vec<String>, String> {
                    let mut out = Vec::with_capacity(context);
                    for _ in 0..context {
                        match next(lines, p)? {
                            Some(l) => out.push(l),
                            None => break,
                        }
                    }
                    Ok(out)
                };
                let after_a = after(&mut lines_a, path_a)?;
                let after_b = after(&mut lines_b, path_b)?;
                return Ok((
                    line,
                    Some(Divergence {
                        line,
                        a,
                        b,
                        before: before.into(),
                        after_a,
                        after_b,
                        last_agreed_t,
                    }),
                ));
            }
        }
    }
}

fn cmd_diff_trace(args: &[String]) -> i32 {
    // Two positional paths; `--context K` bounds both the remembered
    // window and the lookahead printed around the mismatch.
    let mut paths = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--context" => i += 2,
            a if a.starts_with("--") => {
                eprintln!("diff-trace: unknown flag {a}");
                return 2;
            }
            a => {
                paths.push(a.to_string());
                i += 1;
            }
        }
    }
    if paths.len() != 2 {
        eprintln!("diff-trace: expected exactly two trace paths: nds diff-trace A B [--context K]");
        return 2;
    }
    let context = match int_flag(args, "--context", 3, 1 << 16) {
        Ok(k) => k as usize,
        Err(e) => {
            eprintln!("diff-trace: {e}");
            return 2;
        }
    };
    let (a, b) = (&paths[0], &paths[1]);
    match diff_traces(a, b, context) {
        Ok((compared, None)) => {
            println!("compared {compared} records: no divergence");
            0
        }
        Ok((_, Some(d))) => {
            let end = "<end of trace>";
            println!("first divergent record at line {}:", d.line);
            match d.last_agreed_t {
                Some(t) => println!("  last agreeing sim-time: t={t}"),
                None => println!("  last agreeing sim-time: none (no agreed record carried one)"),
            }
            if !d.before.is_empty() {
                println!("  agreed context (newest last):");
                for l in &d.before {
                    println!("    = {l}");
                }
            }
            println!("  A {a}: {}", d.a.as_deref().unwrap_or(end));
            println!("  B {b}: {}", d.b.as_deref().unwrap_or(end));
            for (label, after) in [(&a, &d.after_a), (&b, &d.after_b)] {
                if !after.is_empty() {
                    println!("  next {} record(s) from {label}:", after.len());
                    for l in after {
                        println!("    > {l}");
                    }
                }
            }
            1
        }
        Err(e) => {
            eprintln!("diff-trace: {e}");
            2
        }
    }
}

fn cmd_sensitivity(args: &[String]) -> i32 {
    let parsed = (|| -> Result<_, String> {
        Ok((
            require(args, "--task")?,
            require(args, "--workstations")? as u32,
            require(args, "--owner-demand")?,
            require(args, "--utilization")?,
        ))
    })();
    let (t_demand, w, o, u) = match parsed {
        Ok(p) => p,
        Err(e) => {
            eprintln!("sensitivity: {e}");
            return 2;
        }
    };
    match elasticities(t_demand, w, o, u, 0.05) {
        Ok(e) => {
            let mut t = Table::new(format!(
                "elasticities of weighted efficiency at (T={t_demand}, W={w}, O={o}, U={u})"
            ))
            .headers(["knob", "d ln(WE) / d ln(x)"]);
            t.row(["task demand", &format!("{:+.4}", e.wrt_task_demand)]);
            t.row(["utilization", &format!("{:+.4}", e.wrt_utilization)]);
            t.row(["owner demand", &format!("{:+.4}", e.wrt_owner_demand)]);
            t.row(["pool size", &format!("{:+.4}", e.wrt_workstations)]);
            print!("{}", t.render());
            println!("\ndominant knob: {}", e.dominant());
            0
        }
        Err(e) => {
            eprintln!("sensitivity: {e}");
            1
        }
    }
}
