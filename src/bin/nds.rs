//! `nds` — command-line feasibility tool.
//!
//! ```text
//! nds analyze --job 7200 --workstations 60 --owner-demand 10 --utilization 0.10
//! nds thresholds [--target 0.8]
//! nds validate [--quick]
//! nds sensitivity --task 100 --workstations 60 --owner-demand 10 --utilization 0.10
//! ```

use nds::core::conclusions::check_all_conclusions;
use nds::core::prelude::*;
use nds::core::report::Table;
use nds::model::sensitivity::elasticities;
use nds::model::solver::required_task_ratio;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("thresholds") => cmd_thresholds(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some("sensitivity") => cmd_sensitivity(&args[1..]),
        Some("help") | None => {
            print_usage();
            0
        }
        Some(other) => {
            eprintln!("unknown command: {other}\n");
            print_usage();
            2
        }
    };
    std::process::exit(code);
}

fn print_usage() {
    println!(
        "nds — feasibility of cycle-stealing on non-dedicated workstations\n\
         (Leutenegger & Sun, SC'93)\n\n\
         commands:\n\
         \x20 analyze     --job J --workstations W --owner-demand O --utilization U\n\
         \x20             [--target 0.8]      full feasibility assessment\n\
         \x20 thresholds  [--target 0.8]      required task ratios by U and W\n\
         \x20 validate    [--quick]           rerun the paper's conclusion checks\n\
         \x20 sensitivity --task T --workstations W --owner-demand O --utilization U\n\
         \x20                                 which knob moves weighted efficiency most\n\
         \x20 help                            this message"
    );
}

/// Pull `--name value` from an argument list.
fn flag(args: &[String], name: &str) -> Option<f64> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn require(args: &[String], name: &str) -> Result<f64, String> {
    flag(args, name).ok_or_else(|| format!("missing or invalid {name} <value>"))
}

fn cmd_analyze(args: &[String]) -> i32 {
    let parsed = (|| -> Result<_, String> {
        Ok((
            require(args, "--job")?,
            require(args, "--workstations")? as u32,
            require(args, "--owner-demand")?,
            require(args, "--utilization")?,
            flag(args, "--target").unwrap_or(0.80),
        ))
    })();
    let (j, w, o, u, target) = match parsed {
        Ok(p) => p,
        Err(e) => {
            eprintln!("analyze: {e}");
            return 2;
        }
    };
    let analyzer = match FeasibilityAnalyzer::builder()
        .job_demand(j)
        .workstations(w)
        .owner_demand(o)
        .owner_utilization(u)
        .target_weighted_efficiency(target)
        .build()
    {
        Ok(a) => a,
        Err(e) => {
            eprintln!("analyze: {e}");
            return 2;
        }
    };
    let a = match analyzer.assess() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("analyze: {e}");
            return 1;
        }
    };
    let m = &a.metrics;
    let mut t = Table::new(format!(
        "feasibility of J={j} on W={w} stations (O={o}, U={u})"
    ))
    .headers(["metric", "value"]);
    t.row(["task ratio T/O", &format!("{:.2}", m.task_ratio)]);
    t.row(["E[task time]", &format!("{:.2}", m.expected_task_time)]);
    t.row(["E[job time]", &format!("{:.2}", m.expected_job_time)]);
    t.row(["p95 job time", &format!("{:.2}", a.job_time_p95)]);
    t.row(["speedup", &format!("{:.2}", m.speedup)]);
    t.row(["weighted speedup", &format!("{:.2}", m.weighted_speedup)]);
    t.row(["efficiency", &format!("{:.4}", m.efficiency)]);
    t.row(["weighted efficiency", &format!("{:.4}", m.weighted_efficiency)]);
    t.row([
        "required task ratio",
        &format!("{:.2}", a.required_task_ratio),
    ]);
    t.row([
        "max useful pool",
        &a.max_useful_workstations
            .map_or("none".to_string(), |w| w.to_string()),
    ]);
    t.row([
        "verdict",
        if a.feasible { "FEASIBLE" } else { "infeasible" },
    ]);
    print!("{}", t.render());
    i32::from(!a.feasible)
}

fn cmd_thresholds(args: &[String]) -> i32 {
    let target = flag(args, "--target").unwrap_or(0.80);
    let pools = [2u32, 8, 20, 60, 100];
    let mut t = Table::new(format!(
        "required task ratio for weighted efficiency >= {target}"
    ))
    .headers({
        let mut h = vec!["U".to_string()];
        h.extend(pools.iter().map(|w| format!("W={w}")));
        h
    });
    for u in [0.01, 0.05, 0.10, 0.20] {
        let owner = match OwnerParams::from_utilization(10.0, u) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("thresholds: {e}");
                return 1;
            }
        };
        let mut row = vec![format!("{u:.2}")];
        for &w in &pools {
            match required_task_ratio(w, owner, target) {
                Ok(r) => row.push(format!("{r:.1}")),
                Err(_) => row.push("-".into()),
            }
        }
        t.row(row);
    }
    print!("{}", t.render());
    0
}

fn cmd_validate(args: &[String]) -> i32 {
    let checks = match check_all_conclusions() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("validate: {e}");
            return 1;
        }
    };
    let mut t = Table::new("paper §5 conclusions vs this implementation").headers([
        "claim",
        "published",
        "reproduced",
        "pass",
    ]);
    let mut failures = 0;
    for c in &checks {
        if !c.passed {
            failures += 1;
        }
        t.row([
            c.claim.clone(),
            format!("{}", c.published),
            format!("{:.3}", c.reproduced),
            if c.passed { "yes".into() } else { "NO".to_string() },
        ]);
    }
    print!("{}", t.render());
    if !has_flag(args, "--quick") {
        // Also spot-check simulation-vs-analysis agreement.
        let suite = ValidationSuite::quick(2024);
        match suite.validate_point(1000.0, 10, 0.10) {
            Ok(row) => {
                println!(
                    "\nsim vs analysis at (J=1000, W=10, U=10%): rel err {:.4} ({})",
                    row.outcome.relative_error,
                    if row.outcome.agrees() { "agrees" } else { "DISAGREES" }
                );
                if !row.outcome.agrees() {
                    failures += 1;
                }
            }
            Err(e) => {
                eprintln!("validate: {e}");
                return 1;
            }
        }
    }
    println!(
        "\n{}/{} checks passed",
        checks.len() - failures,
        checks.len()
    );
    i32::from(failures > 0)
}

fn cmd_sensitivity(args: &[String]) -> i32 {
    let parsed = (|| -> Result<_, String> {
        Ok((
            require(args, "--task")?,
            require(args, "--workstations")? as u32,
            require(args, "--owner-demand")?,
            require(args, "--utilization")?,
        ))
    })();
    let (t_demand, w, o, u) = match parsed {
        Ok(p) => p,
        Err(e) => {
            eprintln!("sensitivity: {e}");
            return 2;
        }
    };
    match elasticities(t_demand, w, o, u, 0.05) {
        Ok(e) => {
            let mut t = Table::new(format!(
                "elasticities of weighted efficiency at (T={t_demand}, W={w}, O={o}, U={u})"
            ))
            .headers(["knob", "d ln(WE) / d ln(x)"]);
            t.row(["task demand", &format!("{:+.4}", e.wrt_task_demand)]);
            t.row(["utilization", &format!("{:+.4}", e.wrt_utilization)]);
            t.row(["owner demand", &format!("{:+.4}", e.wrt_owner_demand)]);
            t.row(["pool size", &format!("{:+.4}", e.wrt_workstations)]);
            print!("{}", t.render());
            println!("\ndominant knob: {}", e.dominant());
            0
        }
        Err(e) => {
            eprintln!("sensitivity: {e}");
            1
        }
    }
}
