//! Umbrella crate re-exporting the NDS workspace.

#![forbid(unsafe_code)]
pub use nds_cluster as cluster;
pub use nds_core as core;
pub use nds_des as des;
pub use nds_model as model;
pub use nds_pvm as pvm;
pub use nds_sched as sched;
pub use nds_stats as stats;
